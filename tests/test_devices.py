"""Tests for device specs, the latency simulator and the profiler."""

import numpy as np
import pytest

from repro.devices.simulator import DeviceSimulator, simulate_latency
from repro.devices.spec import DEVICE_REGISTRY, DeviceSpec, all_device_names, get_device, list_devices
from repro.errors import DatasetError, DeviceError
from repro.ops import conv2d, dense, embedding_lookup
from repro.profiler.profiler import Profiler
from repro.profiler.records import MeasureRecord
from repro.tir.lower import lower
from repro.tir.schedule import Schedule, random_schedule


class TestDeviceSpec:
    def test_registry_contains_table2_devices(self):
        for name in ("t4", "k80", "p100", "v100", "a100", "hl100", "e5-2673", "epyc-7452", "graviton2"):
            assert name in DEVICE_REGISTRY

    def test_aliases_resolve(self):
        assert get_device("EPYC").name == "epyc-7452"
        assert get_device("HL-100").name == "hl100"

    def test_unknown_device_raises(self):
        with pytest.raises(DeviceError):
            get_device("tpu-v4")

    def test_taxonomy_filter(self):
        assert all(d.taxonomy == "gpu" for d in list_devices("gpu"))
        assert len(list_devices("cpu")) == 3
        with pytest.raises(DeviceError):
            list_devices("asic")

    def test_feature_vector_shape_and_determinism(self):
        spec = get_device("v100")
        vec = spec.feature_vector()
        assert vec.shape == (DeviceSpec.feature_dim(),)
        assert np.array_equal(vec, spec.feature_vector())

    def test_feature_vectors_differ_across_devices(self):
        assert not np.array_equal(get_device("t4").feature_vector(), get_device("a100").feature_vector())

    def test_invalid_spec_rejected(self):
        with pytest.raises(DeviceError):
            DeviceSpec("bad", "gpu", clock_mhz=0, memory_gb=1, memory_bandwidth_gbps=1,
                       cores=1, peak_fp32_tflops=1)

    def test_ridge_point_positive(self):
        for device in list_devices():
            assert device.ridge_intensity > 0

    def test_all_device_names_matches_registry(self):
        assert set(all_device_names()) == set(DEVICE_REGISTRY)


class TestSimulator:
    @pytest.fixture(scope="class")
    def programs(self):
        rng = np.random.default_rng(0)
        small = dense(4, 64, 64, model="sim")
        large = dense(4, 1024, 1024, model="sim")
        return (
            lower(small, random_schedule(small, rng, "gpu")),
            lower(large, random_schedule(large, rng, "gpu")),
        )

    def test_latency_positive_and_deterministic(self, programs):
        simulator = DeviceSimulator(get_device("t4"), seed=0)
        first = simulator.measure(programs[0])
        second = DeviceSimulator(get_device("t4"), seed=0).measure(programs[0])
        assert first > 0
        assert first == pytest.approx(second)

    def test_more_work_takes_longer(self, programs):
        simulator = DeviceSimulator(get_device("t4"), seed=0)
        assert simulator.measure(programs[1]) > simulator.measure(programs[0])

    def test_fast_gpu_beats_slow_gpu_on_large_kernels(self, programs):
        large = programs[1]
        assert simulate_latency(large, get_device("a100")) < simulate_latency(large, get_device("k80"))

    def test_gpu_beats_cpu_on_large_parallel_kernels(self):
        task = conv2d(1, 64, 64, 28, 28, model="sim")
        rng = np.random.default_rng(1)
        program = lower(task, random_schedule(task, rng, "gpu"))
        assert simulate_latency(program, get_device("v100")) < simulate_latency(
            program, get_device("graviton2")
        )

    def test_gather_heavy_op_penalised_on_accelerator(self):
        task = embedding_lookup(256, 30000, 256, model="sim")
        program = lower(task)
        accel = simulate_latency(program, get_device("hl100"))
        gpu = simulate_latency(program, get_device("a100"))
        assert accel > gpu

    def test_parallel_annotation_reduces_latency(self):
        task = conv2d(1, 32, 32, 28, 28, model="sim")
        serial = lower(task)
        parallel = lower(task, Schedule().split("oc", [8]).annotate("oc.0", "parallel")
                         .annotate("ow", "vectorize"))
        device = get_device("t4")
        assert simulate_latency(parallel, device) < simulate_latency(serial, device)

    def test_breakdown_fields_consistent(self, programs):
        breakdown = DeviceSimulator(get_device("t4"), seed=0).breakdown(programs[0])
        assert breakdown.latency_s > 0
        assert breakdown.bound in ("compute", "memory")
        assert 0 < breakdown.compute_utilization <= 1
        assert breakdown.noise_factor > 0

    def test_different_seeds_give_different_noise(self, programs):
        a = DeviceSimulator(get_device("t4"), seed=1).measure(programs[0])
        b = DeviceSimulator(get_device("t4"), seed=2).measure(programs[0])
        assert a != b
        # ... but only within the noise envelope.
        assert abs(a - b) / a < 0.5


class TestProfiler:
    def test_measure_record_fields(self, dense_program):
        record = Profiler("t4", seed=0).measure(dense_program)
        assert record.device == "t4"
        assert record.latency_s > 0
        assert record.latency_ms == pytest.approx(record.latency_s * 1e3)
        assert record.op_type == "dense"
        assert record.model == "fixture"
        assert "latency_us" in record.summary()

    def test_profile_task_produces_requested_schedules(self, dense_task):
        records = Profiler("t4", seed=0).profile_task(dense_task, num_schedules=5)
        assert len(records) == 5
        assert len({r.schedule_index for r in records}) == 5
        # Different schedules should give different latencies most of the time.
        assert len({round(r.latency_s, 12) for r in records}) > 1

    def test_profile_tasks_deterministic(self, dense_task, conv_task):
        first = Profiler("t4", seed=3).profile_tasks([dense_task, conv_task], num_schedules=3)
        second = Profiler("t4", seed=3).profile_tasks([dense_task, conv_task], num_schedules=3)
        assert [r.latency_s for r in first] == [r.latency_s for r in second]

    def test_invalid_record_latency_rejected(self, dense_program):
        with pytest.raises(DatasetError):
            MeasureRecord(program=dense_program, device="t4", latency_s=0.0)
