"""Tests for repro.utils: deterministic RNG, serialization and topo sort."""

import numpy as np
import pytest

from repro.errors import ReplayError
from repro.utils.rng import choice_without_replacement, new_rng, spawn_rng, stable_hash
from repro.utils.serialization import load_json, save_json
from repro.utils.topo import topological_order


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("abc", 1) == stable_hash("abc", 1)

    def test_differs_for_different_inputs(self):
        assert stable_hash("abc") != stable_hash("abd")

    def test_non_negative_and_bounded(self):
        value = stable_hash("x", bits=32)
        assert 0 <= value < 2**32


class TestNewRng:
    def test_int_seed_is_deterministic(self):
        assert new_rng(3).integers(0, 1000) == new_rng(3).integers(0, 1000)

    def test_string_seed_is_deterministic(self):
        assert new_rng("seed").integers(0, 1000) == new_rng("seed").integers(0, 1000)

    def test_tuple_seed_is_supported(self):
        assert new_rng(("a", 1)).integers(0, 1000) == new_rng(("a", 1)).integers(0, 1000)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert new_rng(generator) is generator

    def test_different_seeds_differ(self):
        draws_a = new_rng(1).integers(0, 10_000, size=8)
        draws_b = new_rng(2).integers(0, 10_000, size=8)
        assert not np.array_equal(draws_a, draws_b)


class TestSpawnRng:
    def test_spawn_is_deterministic_given_parent_state(self):
        child_a = spawn_rng(new_rng(5), "task", "x")
        child_b = spawn_rng(new_rng(5), "task", "x")
        assert child_a.integers(0, 10_000) == child_b.integers(0, 10_000)

    def test_spawn_differs_by_label(self):
        parent = new_rng(5)
        child_a = spawn_rng(parent, "a")
        parent = new_rng(5)
        child_b = spawn_rng(parent, "b")
        assert child_a.integers(0, 10_000) != child_b.integers(0, 10_000)


class TestChoiceWithoutReplacement:
    def test_returns_all_when_count_exceeds_pool(self):
        assert choice_without_replacement(new_rng(0), [1, 2, 3], 10) == [1, 2, 3]

    def test_samples_distinct_items(self):
        picked = choice_without_replacement(new_rng(0), list(range(100)), 10)
        assert len(picked) == len(set(picked)) == 10


class TestSerialization:
    def test_roundtrip_with_numpy_types(self, tmp_path):
        payload = {"a": np.int64(3), "b": np.float32(1.5), "c": np.arange(4), "d": "text"}
        path = save_json(payload, tmp_path / "sub" / "data.json")
        loaded = load_json(path)
        assert loaded["a"] == 3
        assert loaded["b"] == pytest.approx(1.5)
        assert loaded["c"] == [0, 1, 2, 3]
        assert loaded["d"] == "text"


class TestTopologicalOrder:
    def test_linear_chain(self):
        order = topological_order(["a", "b", "c"], {"a": ["b"], "b": ["c"]})
        assert order == ["a", "b", "c"]

    def test_diamond_dependencies_respected(self):
        order = topological_order(["a", "b", "c", "d"], {"a": ["b", "c"], "b": ["d"], "c": ["d"]})
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("c") < order.index("d")

    def test_cycle_raises(self):
        with pytest.raises(ReplayError):
            topological_order(["a", "b"], {"a": ["b"], "b": ["a"]})

    def test_unknown_edge_target_raises(self):
        with pytest.raises(ReplayError):
            topological_order(["a"], {"a": ["ghost"]})
