"""Tests for the baseline cost models and the from-scratch tree ensemble."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_CAPABILITIES,
    HabitatCostModel,
    TiramisuCostModel,
    TLPCostModel,
    XGBoostCostModel,
    flat_features,
    make_baseline,
)
from repro.baselines.features import schedule_primitive_features
from repro.baselines.trees import GradientBoostedTrees, RegressionTree
from repro.errors import TrainingError


class TestRegressionTrees:
    def test_tree_fits_piecewise_constant(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1, 1, size=(300, 2))
        y = np.where(x[:, 0] > 0, 5.0, -5.0)
        tree = RegressionTree(max_depth=2, min_samples_leaf=5).fit(x, y)
        pred = tree.predict(x)
        assert np.mean(np.abs(pred - y)) < 0.5

    def test_tree_respects_max_depth_zero_equivalent(self):
        x = np.arange(20, dtype=float).reshape(-1, 1)
        y = np.arange(20, dtype=float)
        tree = RegressionTree(max_depth=0).fit(x, y)
        assert np.allclose(tree.predict(x), y.mean())

    def test_gbt_fits_nonlinear_function(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-2, 2, size=(400, 3))
        y = np.sin(x[:, 0]) + x[:, 1] ** 2
        model = GradientBoostedTrees(n_estimators=50, learning_rate=0.2, max_depth=4, seed=0)
        model.fit(x, y)
        residual = np.mean((model.predict(x) - y) ** 2)
        assert residual < 0.05

    def test_gbt_predict_before_fit_raises(self):
        with pytest.raises(TrainingError):
            GradientBoostedTrees().predict(np.zeros((2, 2)))

    def test_tree_invalid_data_raises(self):
        with pytest.raises(TrainingError):
            RegressionTree().fit(np.zeros((0, 2)), np.zeros(0))


class TestBaselineFeatures:
    def test_flat_features_shape_and_determinism(self, t4_splits):
        records = t4_splits.train[:10]
        features = flat_features(records)
        assert features.shape[0] == 10
        assert np.array_equal(features, flat_features(records))
        assert np.all(np.isfinite(features))

    def test_device_features_optional(self, t4_splits):
        records = t4_splits.train[:5]
        with_device = flat_features(records, include_device=True)
        without_device = flat_features(records, include_device=False)
        assert with_device.shape[1] > without_device.shape[1]

    def test_schedule_primitive_features_shape(self, t4_splits):
        vector = schedule_primitive_features(t4_splits.train[0])
        assert vector.shape == (14,)
        assert np.all(np.isfinite(vector))


class TestXGBoostBaseline:
    def test_fit_predict_and_accuracy(self, t4_splits):
        model = XGBoostCostModel(n_estimators=30, max_depth=5, seed=0)
        model.fit(t4_splits.train)
        metrics = model.evaluate(t4_splits.test)
        assert metrics["mape"] < 0.6
        predictions = model.predict(t4_splits.test)
        assert np.all(predictions > 0)
        assert model.throughput_samples_per_s > 0

    def test_predict_before_fit_raises(self, t4_splits):
        with pytest.raises(TrainingError):
            XGBoostCostModel().predict(t4_splits.test)

    def test_fit_empty_raises(self):
        with pytest.raises(TrainingError):
            XGBoostCostModel().fit([])


class TestTiramisuBaseline:
    def test_fit_predict_runs(self, t4_splits):
        model = TiramisuCostModel(epochs=1, max_train_samples=40, seed=0)
        model.fit(t4_splits.train)
        predictions = model.predict(t4_splits.test[:10])
        assert predictions.shape == (10,)
        assert np.all(predictions > 0)

    def test_throughput_counts_processed_samples(self, t4_splits):
        model = TiramisuCostModel(epochs=2, max_train_samples=30, seed=0)
        model.fit(t4_splits.train)
        assert model._samples_processed == 60


class TestTLPBaseline:
    def test_relative_scores_rank_schedules_within_task(self, t4_splits):
        model = TLPCostModel(epochs=40, seed=0)
        model.fit(t4_splits.train)
        # Pick a task with several measured schedules in the training set.
        by_task = {}
        for record in t4_splits.train:
            by_task.setdefault(record.task_key, []).append(record)
        task_records = max(by_task.values(), key=len)
        scores = model.predict_relative(task_records)
        latencies = np.asarray([r.latency_s for r in task_records])
        # The correlation between scores and measured latency should be positive.
        correlation = np.corrcoef(scores, latencies)[0, 1]
        assert correlation > -0.5  # at minimum, not strongly anti-correlated

    def test_absolute_error_is_large(self, t4_splits):
        model = TLPCostModel(epochs=20, seed=0)
        model.fit(t4_splits.train)
        metrics = model.evaluate(t4_splits.test)
        # TLP predicts relative time; its absolute-time error must be much
        # larger than a dedicated absolute-time model's.
        assert metrics["mape"] > 0.5


class TestHabitatBaseline:
    def test_requires_gpu_target(self):
        with pytest.raises(TrainingError):
            HabitatCostModel(target_device="epyc-7452")

    def test_cross_gpu_scaling(self, tiny_dataset):
        model = HabitatCostModel(target_device="t4", source_device="k80", seed=0)
        model.fit(tiny_dataset.records("k80"))
        target_records = tiny_dataset.records("t4")[:50]
        metrics = model.evaluate(target_records)
        assert metrics["mape"] < 5.0  # rough scaling, but in the right ballpark
        assert np.all(model.predict(target_records) > 0)

    def test_needs_gpu_sources(self, tiny_dataset):
        model = HabitatCostModel(target_device="t4", seed=0)
        with pytest.raises(TrainingError):
            model.fit(tiny_dataset.records("epyc-7452"))


class TestRegistry:
    def test_capability_matrix_matches_table1(self):
        assert BASELINE_CAPABILITIES["cdmpp"] == {
            "absolute_time": True,
            "model_level": True,
            "op_level": True,
            "cross_device": True,
        }
        assert not BASELINE_CAPABILITIES["autotvm_xgboost"]["absolute_time"]
        assert not BASELINE_CAPABILITIES["habitat"]["cross_device"]
        assert not BASELINE_CAPABILITIES["tlp"]["absolute_time"]
        # CDMPP is the only row with every capability (the point of Table 1).
        full_rows = [name for name, caps in BASELINE_CAPABILITIES.items() if all(caps.values())]
        assert full_rows == ["cdmpp"]

    def test_make_baseline(self):
        assert isinstance(make_baseline("xgboost"), XGBoostCostModel)
        assert isinstance(make_baseline("tlp"), TLPCostModel)
        with pytest.raises(TrainingError):
            make_baseline("nnlqp")
