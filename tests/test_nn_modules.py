"""Tests for NN modules, losses, optimizers and schedulers."""

import numpy as np
import pytest

from repro.errors import ModelError, TrainingError
from repro.nn import (
    LSTM,
    MLP,
    Adam,
    CyclicLR,
    Dropout,
    LayerNorm,
    Linear,
    LSTMCell,
    MultiHeadSelfAttention,
    SGD,
    Sequential,
    StepLR,
    Tensor,
    TransformerEncoder,
    huber_loss,
    mae_loss,
    mape_loss,
    mse_loss,
    mspe_loss,
)
from repro.nn.layers import make_activation
from repro.nn.module import Module, Parameter
from repro.nn.optim import make_optimizer
from repro.nn.schedulers import CosineLR, make_scheduler


class TestModuleInfrastructure:
    def test_named_parameters_recursion(self):
        mlp = MLP(4, [8], 2, rng=np.random.default_rng(0))
        names = [name for name, _ in mlp.named_parameters()]
        assert any("layers.0.weight" in name for name in names)
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_state_dict_roundtrip(self):
        mlp_a = MLP(4, [8], 2, rng=np.random.default_rng(0))
        mlp_b = MLP(4, [8], 2, rng=np.random.default_rng(1))
        x = Tensor(np.random.default_rng(2).normal(size=(5, 4)))
        assert not np.allclose(mlp_a(x).data, mlp_b(x).data)
        # repro-lint: disable=clone-discipline -- the roundtrip under test IS a cross-model state_dict load
        mlp_b.load_state_dict(mlp_a.state_dict())
        assert np.allclose(mlp_a(x).data, mlp_b(x).data)

    def test_state_dict_mismatch_raises(self):
        mlp = MLP(4, [8], 2)
        with pytest.raises(ModelError):
            # repro-lint: disable=clone-discipline -- deliberately feeding a bogus state_dict to test the mismatch error
            mlp.load_state_dict({"bogus": np.zeros(3)})

    def test_train_eval_propagates(self):
        model = Sequential(Linear(4, 4), Dropout(0.5))
        model.eval()
        assert all(not m.training for m in model.modules())

    def test_zero_grad_clears(self):
        layer = Linear(3, 2)
        out = layer(Tensor(np.ones((2, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        layer.zero_grad()
        assert layer.weight.grad is None


class TestLayers:
    def test_linear_shapes(self):
        layer = Linear(6, 3)
        assert layer(Tensor(np.zeros((4, 6)))).shape == (4, 3)
        assert layer(Tensor(np.zeros((2, 5, 6)))).shape == (2, 5, 3)

    def test_linear_invalid_sizes(self):
        with pytest.raises(ModelError):
            Linear(0, 3)

    def test_layernorm_normalises(self):
        norm = LayerNorm(16)
        out = norm(Tensor(np.random.default_rng(0).normal(3.0, 5.0, size=(8, 16))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_dropout_train_vs_eval(self):
        dropout = Dropout(0.5, rng=np.random.default_rng(0))
        x = Tensor(np.ones((4, 100)))
        assert (dropout(x).data == 0).any()
        dropout.eval()
        assert np.allclose(dropout(x).data, 1.0)

    def test_dropout_invalid_rate(self):
        with pytest.raises(ModelError):
            Dropout(1.0)

    def test_make_activation(self):
        assert make_activation("relu")(Tensor([-1.0, 2.0])).data.tolist() == [0.0, 2.0]
        with pytest.raises(ModelError):
            make_activation("swish")

    def test_mlp_degenerate_single_layer(self):
        mlp = MLP(4, [], 2)
        assert len(mlp.layers) == 1

    def test_mlp_invalid_sizes(self):
        with pytest.raises(ModelError):
            MLP(4, [0], 2)


class TestAttentionAndTransformer:
    def test_attention_output_shape(self):
        attention = MultiHeadSelfAttention(16, 4, rng=np.random.default_rng(0))
        out = attention(Tensor(np.random.default_rng(1).normal(size=(3, 5, 16))))
        assert out.shape == (3, 5, 16)

    def test_attention_dim_head_mismatch(self):
        with pytest.raises(ModelError):
            MultiHeadSelfAttention(10, 3)

    def test_mask_blocks_padded_positions(self):
        rng = np.random.default_rng(0)
        attention = MultiHeadSelfAttention(8, 2, rng=rng)
        x = Tensor(rng.normal(size=(1, 4, 8)))
        mask = Tensor(np.array([[1.0, 1.0, 0.0, 0.0]]))
        x_perturbed = Tensor(np.concatenate([x.data[:, :2], rng.normal(size=(1, 2, 8))], axis=1))
        out_a = attention(x, mask=mask).data[:, :2]
        out_b = attention(x_perturbed, mask=mask).data[:, :2]
        np.testing.assert_allclose(out_a, out_b, atol=1e-8)

    def test_transformer_encoder_shapes_and_grads(self):
        rng = np.random.default_rng(0)
        encoder = TransformerEncoder(dim=16, num_heads=4, num_layers=2, rng=rng)
        x = Tensor(rng.normal(size=(2, 6, 16)), requires_grad=True)
        out = encoder(x)
        assert out.shape == (2, 6, 16)
        out.sum().backward()
        assert x.grad is not None
        assert all(p.grad is not None for p in encoder.parameters())

    def test_transformer_requires_layers(self):
        with pytest.raises(ModelError):
            TransformerEncoder(dim=8, num_heads=2, num_layers=0)


class TestLSTM:
    def test_cell_step_shapes(self):
        cell = LSTMCell(8, 16, rng=np.random.default_rng(0))
        hidden, cell_state = cell(Tensor(np.zeros((4, 8))), cell.initial_state(4))
        assert hidden.shape == (4, 16) and cell_state.shape == (4, 16)

    def test_lstm_sequence(self):
        lstm = LSTM(8, 16, rng=np.random.default_rng(0))
        steps = [Tensor(np.random.default_rng(i).normal(size=(2, 8))) for i in range(5)]
        final, (hidden, cell_state) = lstm(steps)
        assert final.shape == (2, 16)
        assert np.allclose(final.data, hidden.data)

    def test_lstm_empty_sequence_raises(self):
        with pytest.raises(ModelError):
            LSTM(4, 4)([])


class TestLosses:
    def test_mse_and_mae(self):
        pred, target = Tensor([1.0, 3.0]), Tensor([0.0, 1.0])
        assert mse_loss(pred, target).item() == pytest.approx(2.5)
        assert mae_loss(pred, target).item() == pytest.approx(1.5)

    def test_mape_and_mspe(self):
        pred, target = Tensor([2.0, 2.0]), Tensor([1.0, 4.0])
        assert mape_loss(pred, target).item() == pytest.approx(0.75, rel=1e-6)
        assert mspe_loss(pred, target).item() == pytest.approx((1.0 + 0.25) / 2, rel=1e-6)

    def test_huber_behaves_quadratic_then_linear(self):
        small = huber_loss(Tensor([0.5]), Tensor([0.0]), delta=1.0).item()
        large = huber_loss(Tensor([10.0]), Tensor([0.0]), delta=1.0).item()
        assert small == pytest.approx(0.125)
        assert large == pytest.approx(0.5 + (10.0 - 1.0) * 1.0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(TrainingError):
            mse_loss(Tensor([1.0]), Tensor([1.0, 2.0]))


class TestOptimizers:
    def _quadratic_problem(self, optimizer_factory, steps=200):
        target = np.array([3.0, -2.0])
        param = Parameter(np.zeros(2))
        optimizer = optimizer_factory([param])
        for _ in range(steps):
            optimizer.zero_grad()
            loss = ((param - Tensor(target)) ** 2.0).sum()
            loss.backward()
            optimizer.step()
        return param.data, target

    def test_sgd_converges(self):
        value, target = self._quadratic_problem(lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(value, target, atol=1e-3)

    def test_adam_converges(self):
        value, target = self._quadratic_problem(lambda p: Adam(p, lr=0.1))
        np.testing.assert_allclose(value, target, atol=1e-2)

    def test_weight_decay_shrinks_solution(self):
        free, target = self._quadratic_problem(lambda p: Adam(p, lr=0.1, weight_decay=0.0))
        decayed, _ = self._quadratic_problem(lambda p: Adam(p, lr=0.1, weight_decay=0.5))
        assert np.linalg.norm(decayed) < np.linalg.norm(free)

    def test_clip_grad_norm(self):
        param = Parameter(np.zeros(4))
        optimizer = SGD([param], lr=0.1)
        loss = (param * Tensor(np.full(4, 100.0))).sum()
        loss.backward()
        norm = optimizer.clip_grad_norm(1.0)
        assert norm == pytest.approx(200.0)
        assert np.linalg.norm(param.grad) == pytest.approx(1.0)

    def test_empty_parameters_rejected(self):
        with pytest.raises(TrainingError):
            SGD([], lr=0.1)

    def test_make_optimizer(self):
        params = [Parameter(np.zeros(2))]
        assert isinstance(make_optimizer("adam", params, 1e-3), Adam)
        assert isinstance(make_optimizer("sgd", params, 1e-3), SGD)
        with pytest.raises(TrainingError):
            make_optimizer("lamb", params, 1e-3)


class TestSchedulers:
    def _optimizer(self):
        return SGD([Parameter(np.zeros(2))], lr=1.0)

    def test_step_lr_decays(self):
        optimizer = self._optimizer()
        scheduler = StepLR(optimizer, step_size=2, gamma=0.5)
        lrs = [scheduler.step() for _ in range(4)]
        assert lrs[-1] == pytest.approx(0.25)

    def test_cyclic_lr_goes_up_and_down(self):
        optimizer = self._optimizer()
        scheduler = CyclicLR(optimizer, max_lr=2.0, cycle_steps=10)
        lrs = [scheduler.step() for _ in range(10)]
        assert max(lrs) > 1.5
        assert lrs[-1] < max(lrs)

    def test_cosine_lr_monotone_decay(self):
        optimizer = self._optimizer()
        scheduler = CosineLR(optimizer, total_steps=10, min_lr=0.0)
        lrs = [scheduler.step() for _ in range(10)]
        assert all(a >= b - 1e-12 for a, b in zip(lrs, lrs[1:]))
        assert lrs[-1] == pytest.approx(0.0, abs=1e-6)

    def test_make_scheduler_unknown_raises(self):
        with pytest.raises(TrainingError):
            make_scheduler("warmup", self._optimizer())
