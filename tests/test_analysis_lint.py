"""Tests for the codebase-aware static checker (repro.analysis lint).

Each rule gets a must-flag / must-pass fixture pair written into a temp tree
shaped like the real package (scoped rules key off path fragments such as
``repro/serving/``).  Beyond the per-rule checks this file covers the two
acceptance demonstrations from the issue — deleting a ``# guarded-by``
annotation fails the run, and reintroducing ``def f(x=[])`` in serving/
fails the run — plus suppression semantics, the JSON report schema, the CLI
exit codes, and a self-check asserting the real ``src/`` tree lints clean.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis.lint import (
    RULE_REGISTRY,
    Finding,
    main,
    run_lint,
)

# Importing the rules module registers the built-in rules (run_lint does this
# lazily; the registry tests need it done up front).
import repro.analysis.rules  # noqa: E402,F401

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Every rule the checker ships with; registry drift fails loudly.
EXPECTED_RULES = {
    "lock-guard",
    "rng-global-state",
    "rng-generator-alias",
    "mutable-default",
    "clone-discipline",
    "thread-global",
    "protocol-conformance",
    "broad-except",
    "inference-autograd",
}


def write(root: Path, rel: str, source: str) -> Path:
    """Write a dedented fixture module under ``root`` and return its path."""
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return path


def lint(root: Path, rules=None):
    return run_lint([root], rule_ids=rules)


def rule_ids(report, strict: bool = False):
    return [finding.rule for finding in report.active_findings(strict)]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_all_expected_rules_registered(self):
        assert EXPECTED_RULES <= set(RULE_REGISTRY)

    def test_rules_have_descriptions_and_valid_severity(self):
        for rule_id, rule in RULE_REGISTRY.items():
            assert rule.description, rule_id
            assert rule.severity in {"error", "warning"}, rule_id


# ---------------------------------------------------------------------------
# lock-guard
# ---------------------------------------------------------------------------

LOCKED_COUNTER = """
    import threading

    class Counter:
        def __init__(self):
            self._lock = threading.Lock()
            self.hits = 0  # guarded-by: _lock

        def bump(self):
            with self._lock:
                self.hits += 1
"""


class TestLockGuard:
    def test_guarded_access_without_lock_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0  # guarded-by: _lock

                def bump(self):
                    self.hits += 1
            """,
        )
        report = lint(tmp_path, rules=["lock-guard"])
        assert rule_ids(report) == ["lock-guard"]
        assert "without 'with self._lock:'" in report.findings[0].message

    def test_guarded_access_under_lock_passes(self, tmp_path):
        write(tmp_path, "repro/serving/mod.py", LOCKED_COUNTER)
        assert rule_ids(lint(tmp_path, rules=["lock-guard"])) == []

    def test_deleting_annotation_fails(self, tmp_path):
        """The acceptance demonstration: drop ``# guarded-by`` and the
        reverse check (mutation under a held lock must be annotated) fires."""
        write(
            tmp_path,
            "repro/serving/mod.py",
            LOCKED_COUNTER.replace("  # guarded-by: _lock", ""),
        )
        report = lint(tmp_path, rules=["lock-guard"])
        assert rule_ids(report) == ["lock-guard"]
        assert "no '# guarded-by: _lock'" in report.findings[0].message
        assert report.failed()

    def test_init_is_exempt(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0  # guarded-by: _lock
                    self.hits = 1
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["lock-guard"])) == []

    def test_requires_lock_helper_passes(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0  # guarded-by: _lock

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                # requires-lock: _lock
                def _bump_locked(self):
                    self.hits += 1
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["lock-guard"])) == []

    def test_requires_lock_naming_unknown_lock_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            class Counter:
                # requires-lock: _mutex
                def bump(self):
                    pass
            """,
        )
        report = lint(tmp_path, rules=["lock-guard"])
        assert rule_ids(report) == ["lock-guard"]
        assert "names no lock attribute" in report.findings[0].message

    def test_dangling_annotation_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    # guarded-by: _lock
                    pass
            """,
        )
        report = lint(tmp_path, rules=["lock-guard"])
        assert rule_ids(report) == ["lock-guard"]
        assert "dangling" in report.findings[0].message

    def test_unknown_lock_in_annotation_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            class Counter:
                def __init__(self):
                    self.hits = 0  # guarded-by: _lock
            """,
        )
        report = lint(tmp_path, rules=["lock-guard"])
        assert rule_ids(report) == ["lock-guard"]
        assert "defines no 'self._lock" in report.findings[0].message

    def test_nested_function_does_not_inherit_lock(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0  # guarded-by: _lock

                def bump_later(self):
                    with self._lock:
                        def callback():
                            self.hits += 1
                        return callback
            """,
        )
        report = lint(tmp_path, rules=["lock-guard"])
        # The closure runs after the with-block exits: both the unguarded
        # access and (while collected under the with) no false negatives.
        assert "lock-guard" in rule_ids(report)

    def test_mutator_call_under_lock_needs_annotation(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            import threading

            class Queue:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = []

                def push(self, item):
                    with self._lock:
                        self._items.append(item)
            """,
        )
        report = lint(tmp_path, rules=["lock-guard"])
        assert rule_ids(report) == ["lock-guard"]
        assert "_items" in report.findings[0].message


# ---------------------------------------------------------------------------
# rng-global-state
# ---------------------------------------------------------------------------


class TestRngGlobalState:
    @pytest.mark.parametrize(
        "snippet",
        [
            "np.random.seed(0)",
            "x = np.random.rand(3)",
            "np.random.shuffle(items)",
            "numpy.random.seed(1)",
        ],
    )
    def test_global_state_flags(self, tmp_path, snippet):
        write(
            tmp_path,
            "repro/core/mod.py",
            f"""
            import numpy as np
            import numpy

            items = (1, 2)
            {snippet}
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["rng-global-state"])) == [
            "rng-global-state"
        ]

    @pytest.mark.parametrize(
        "snippet",
        [
            "rng = np.random.default_rng(0)",
            "gen = np.random.Generator(np.random.PCG64(0))",
            "seq = np.random.SeedSequence(7)",
        ],
    )
    def test_generator_api_passes(self, tmp_path, snippet):
        write(tmp_path, "repro/core/mod.py", f"import numpy as np\n{snippet}\n")
        assert rule_ids(lint(tmp_path, rules=["rng-global-state"])) == []


# ---------------------------------------------------------------------------
# rng-generator-alias
# ---------------------------------------------------------------------------


class TestRngGeneratorAlias:
    def test_storing_caller_generator_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            class Sampler:
                def __init__(self, rng):
                    self._rng = rng
            """,
        )
        report = lint(tmp_path, rules=["rng-generator-alias"])
        assert rule_ids(report) == ["rng-generator-alias"]
        assert "share one stream" in report.findings[0].message

    def test_or_fallback_alias_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            class Sampler:
                def __init__(self, rng=None):
                    self._rng = rng or new_rng(0)
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["rng-generator-alias"])) == [
            "rng-generator-alias"
        ]

    def test_conditional_alias_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            class Sampler:
                def __init__(self, rng=None):
                    self._rng = rng if rng is not None else new_rng(0)
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["rng-generator-alias"])) == [
            "rng-generator-alias"
        ]

    def test_new_rng_of_seedlike_param_flags(self, tmp_path):
        """``new_rng`` returns a Generator argument unchanged, so routing a
        seed-typed parameter through it still aliases."""
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.utils.rng import new_rng

            class Sampler:
                def __init__(self, seed=0):
                    self._rng = new_rng(seed)
            """,
        )
        report = lint(tmp_path, rules=["rng-generator-alias"])
        assert rule_ids(report) == ["rng-generator-alias"]
        assert "derive_rng" in report.findings[0].message

    def test_spawn_and_derive_pass(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.utils.rng import derive_rng, spawn_rng

            class Sampler:
                def __init__(self, rng, seed=0):
                    self._rng = spawn_rng(rng, "sampler")
                    self._seed_rng = derive_rng(seed, "sampler")
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["rng-generator-alias"])) == []

    def test_annotated_generator_param_flags_regardless_of_name(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            import numpy as np

            class Sampler:
                def __init__(self, source: np.random.Generator):
                    self._rng = source
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["rng-generator-alias"])) == [
            "rng-generator-alias"
        ]

    def test_local_use_without_storing_passes(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            def sample(rng, n):
                return rng.integers(0, 10, size=n)
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["rng-generator-alias"])) == []


# ---------------------------------------------------------------------------
# mutable-default
# ---------------------------------------------------------------------------


class TestMutableDefault:
    @pytest.mark.parametrize(
        "signature",
        [
            "def f(x=[])",
            "def f(x={})",
            "def f(x=set())",
            "def f(*, x=dict())",
            "def f(x=list())",
        ],
    )
    def test_mutable_defaults_flag(self, tmp_path, signature):
        write(tmp_path, "repro/core/mod.py", f"{signature}:\n    return x\n")
        assert rule_ids(lint(tmp_path, rules=["mutable-default"])) == [
            "mutable-default"
        ]

    @pytest.mark.parametrize(
        "signature",
        ["def f(x=None)", "def f(x=())", "def f(x=0)", "def f(x='a')"],
    )
    def test_immutable_defaults_pass(self, tmp_path, signature):
        write(tmp_path, "repro/core/mod.py", f"{signature}:\n    return x\n")
        assert rule_ids(lint(tmp_path, rules=["mutable-default"])) == []

    def test_mutable_default_in_serving_fails_run(self, tmp_path, capsys):
        """The acceptance demonstration: ``def f(x=[])`` anywhere in
        serving/ makes the CLI exit non-zero."""
        write(tmp_path, "repro/serving/helpers.py", "def f(x=[]):\n    return x\n")
        exit_code = main([str(tmp_path), "--strict"])
        assert exit_code == 1
        assert "mutable-default" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# clone-discipline
# ---------------------------------------------------------------------------


class TestCloneDiscipline:
    def test_cross_model_load_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            class Trainer:
                def sync(self, other, model):
                    other.load_state_dict(model.state_dict())
            """,
        )
        report = lint(tmp_path, rules=["clone-discipline"])
        assert rule_ids(report) == ["clone-discipline"]
        assert "shared-checkpoint corruption" in report.findings[0].message

    @pytest.mark.parametrize(
        "context",
        [
            "def clone(self):",
            "def load_checkpoint(self, other):",
            "def _restore(self, other):",
        ],
    )
    def test_allowed_methods_pass(self, tmp_path, context):
        write(
            tmp_path,
            "repro/core/mod.py",
            f"""
            class Trainer:
                {context}
                    other = object()
                    other.load_state_dict({{}})
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["clone-discipline"])) == []

    def test_fine_tuner_class_passes(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            class FineTuner:
                def adapt(self, model, state):
                    model.load_state_dict(state)
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["clone-discipline"])) == []

    def test_self_load_passes(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            class Model:
                def from_state(self, state):
                    self.load_state_dict(state)
                    self.inner.load_state_dict(state)
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["clone-discipline"])) == []

    def test_state_dict_subscript_write_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            def patch(model, value):
                model.state_dict()["weight"] = value
            """,
        )
        report = lint(tmp_path, rules=["clone-discipline"])
        assert rule_ids(report) == ["clone-discipline"]
        assert "mutates shared checkpoint" in report.findings[0].message


# ---------------------------------------------------------------------------
# thread-global
# ---------------------------------------------------------------------------


class TestThreadGlobal:
    def test_module_level_mutable_in_nn_flags(self, tmp_path):
        write(tmp_path, "repro/nn/mod.py", "_cache = {}\n")
        report = lint(tmp_path, rules=["thread-global"])
        assert rule_ids(report) == ["thread-global"]
        assert "shared across threads" in report.findings[0].message

    def test_global_statement_in_nn_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/nn/mod.py",
            """
            _state = None

            def set_state(value):
                global _state
                _state = value
            """,
        )
        assert "thread-global" in rule_ids(lint(tmp_path, rules=["thread-global"]))

    @pytest.mark.parametrize(
        "snippet",
        [
            "__all__ = ['a', 'b']",
            "_SIZES = (1, 2, 3)",
            "import threading\n_state = threading.local()",
            "from contextvars import ContextVar\n_mode = ContextVar('mode')",
        ],
    )
    def test_safe_module_state_passes(self, tmp_path, snippet):
        write(tmp_path, "repro/nn/mod.py", snippet + "\n")
        assert rule_ids(lint(tmp_path, rules=["thread-global"])) == []

    def test_out_of_scope_package_passes(self, tmp_path):
        write(tmp_path, "repro/core/mod.py", "_cache = {}\n")
        assert rule_ids(lint(tmp_path, rules=["thread-global"])) == []


# ---------------------------------------------------------------------------
# protocol-conformance
# ---------------------------------------------------------------------------

COST_MODEL_BASE = """
    class CostModel:
        backend = "base"

        def predict(self, programs):
            raise NotImplementedError

        def save(self, path):
            raise NotImplementedError

        def describe(self):
            return self.backend
"""


class TestProtocolConformance:
    def test_missing_abstract_member_flags(self, tmp_path):
        write(tmp_path, "repro/backends/base.py", COST_MODEL_BASE)
        write(
            tmp_path,
            "repro/backends/impl.py",
            """
            from repro.backends.base import CostModel

            class PartialModel(CostModel):
                backend = "partial"

                def predict(self, programs):
                    return programs
            """,
        )
        report = lint(tmp_path, rules=["protocol-conformance"])
        assert rule_ids(report) == ["protocol-conformance"]
        assert "'save'" in report.findings[0].message

    def test_missing_backend_identifier_flags(self, tmp_path):
        write(tmp_path, "repro/backends/base.py", COST_MODEL_BASE)
        write(
            tmp_path,
            "repro/backends/impl.py",
            """
            from repro.backends.base import CostModel

            class NoBackend(CostModel):
                def predict(self, programs):
                    return programs

                def save(self, path):
                    pass
            """,
        )
        report = lint(tmp_path, rules=["protocol-conformance"])
        assert rule_ids(report) == ["protocol-conformance"]
        assert "'backend'" in report.findings[0].message

    def test_conforming_subclass_passes(self, tmp_path):
        write(tmp_path, "repro/backends/base.py", COST_MODEL_BASE)
        write(
            tmp_path,
            "repro/backends/impl.py",
            """
            from repro.backends.base import CostModel

            class FullModel(CostModel):
                def __init__(self):
                    self.backend = "full"

                def predict(self, programs):
                    return programs

                def save(self, path):
                    pass
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["protocol-conformance"])) == []

    def test_no_base_file_passes(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            class FreeStanding:
                pass
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["protocol-conformance"])) == []


# ---------------------------------------------------------------------------
# broad-except
# ---------------------------------------------------------------------------


class TestBroadExcept:
    def test_silent_swallow_in_serving_flags_as_warning(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            def run(work):
                try:
                    work()
                except Exception:
                    pass
            """,
        )
        report = lint(tmp_path, rules=["broad-except"])
        assert rule_ids(report, strict=True) == ["broad-except"]
        assert report.findings[0].severity == "warning"
        # Warnings gate only strict runs.
        assert not report.failed(strict=False)
        assert report.failed(strict=True)

    def test_bare_except_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            def run(work):
                try:
                    work()
                except:
                    return None
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["broad-except"])) == ["broad-except"]

    @pytest.mark.parametrize(
        "handler_body",
        [
            "raise",
            "log.warning('boom: %s', error)",
            "self._send_error(error)",
            "print(error)",
        ],
    )
    def test_reporting_handlers_pass(self, tmp_path, handler_body):
        write(
            tmp_path,
            "repro/serving/mod.py",
            f"""
            def run(work, log, error=None):
                try:
                    work()
                except Exception as error:
                    {handler_body}
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["broad-except"])) == []

    def test_out_of_scope_package_passes(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            def run(work):
                try:
                    work()
                except Exception:
                    pass
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["broad-except"])) == []


# ---------------------------------------------------------------------------
# inference-autograd
# ---------------------------------------------------------------------------


class TestInferenceAutograd:
    def test_tensor_construction_in_serving_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            from repro.nn.tensor import Tensor

            def score(model, x):
                return model(Tensor(x))
            """,
        )
        report = lint(tmp_path, rules=["inference-autograd"])
        assert rule_ids(report) == ["inference-autograd"]
        assert "autograd graph" in report.findings[0].message

    def test_qualified_tensor_construction_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            from repro import nn

            def score(model, x):
                return model(nn.Tensor(x))
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["inference-autograd"])) == [
            "inference-autograd"
        ]

    def test_direct_forward_call_flags(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            def score(predictor, features):
                return predictor.forward(features)
            """,
        )
        report = lint(tmp_path, rules=["inference-autograd"])
        assert rule_ids(report) == ["inference-autograd"]
        assert "infer" in report.findings[0].message

    def test_infer_path_passes(self, tmp_path):
        write(
            tmp_path,
            "repro/serving/mod.py",
            """
            def score(predictor, features):
                return predictor.infer(features)

            def batch(model, programs, device):
                return model.predict_programs(programs, device)
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["inference-autograd"])) == []

    def test_out_of_scope_package_passes(self, tmp_path):
        """Training code legitimately builds graphs: nn/ and core/ are free
        to construct Tensors and call forward."""
        write(
            tmp_path,
            "repro/core/mod.py",
            """
            from repro.nn.tensor import Tensor

            def loss(model, x):
                return model.forward(Tensor(x, requires_grad=True))
            """,
        )
        assert rule_ids(lint(tmp_path, rules=["inference-autograd"])) == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------


class TestSuppressions:
    def test_trailing_suppression_with_justification(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            "def f(x=[]):  # repro-lint: disable=mutable-default -- fixture\n"
            "    return x\n",
        )
        report = lint(tmp_path, rules=["mutable-default"])
        assert rule_ids(report, strict=True) == []
        assert len(report.suppressed) == 1
        finding, suppression = report.suppressed[0]
        assert finding.rule == "mutable-default"
        assert suppression.justification == "fixture"
        assert not report.failed(strict=True)

    def test_standalone_suppression_governs_next_line(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            "# repro-lint: disable=mutable-default -- fixture\n"
            "def f(x=[]):\n"
            "    return x\n",
        )
        report = lint(tmp_path, rules=["mutable-default"])
        assert rule_ids(report, strict=True) == []
        assert len(report.suppressed) == 1

    def test_file_level_suppression(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            "# repro-lint: disable-file=mutable-default -- generated fixture\n"
            "def f(x=[]):\n"
            "    return x\n"
            "def g(y={}):\n"
            "    return y\n",
        )
        report = lint(tmp_path, rules=["mutable-default"])
        assert rule_ids(report, strict=True) == []
        assert len(report.suppressed) == 2

    def test_suppression_only_covers_named_rule(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            "def f(x=[]):  # repro-lint: disable=broad-except -- wrong rule\n"
            "    return x\n",
        )
        report = lint(tmp_path, rules=["mutable-default"])
        assert rule_ids(report) == ["mutable-default"]

    def test_undocumented_suppression_fails_strict_only(self, tmp_path):
        write(
            tmp_path,
            "repro/core/mod.py",
            "def f(x=[]):  # repro-lint: disable=mutable-default\n"
            "    return x\n",
        )
        report = lint(tmp_path, rules=["mutable-default"])
        assert not report.failed(strict=False)
        assert report.failed(strict=True)
        assert rule_ids(report, strict=True) == ["undocumented-suppression"]


# ---------------------------------------------------------------------------
# report schema and CLI
# ---------------------------------------------------------------------------


class TestReportAndCli:
    def test_json_schema(self, tmp_path):
        write(tmp_path, "repro/core/mod.py", "def f(x=[]):\n    return x\n")
        payload = lint(tmp_path).to_json(strict=True)
        # Round-trips through json (no stray Path/ast objects).
        payload = json.loads(json.dumps(payload))
        assert payload["version"] == 1
        assert payload["strict"] is True
        assert payload["files_checked"] == 1
        assert set(payload["counts"]) == {"error", "warning", "suppressed"}
        assert payload["counts"]["error"] >= 1
        (finding,) = [
            f for f in payload["findings"] if f["rule"] == "mutable-default"
        ]
        assert {"rule", "message", "path", "line", "severity"} <= set(finding)
        assert finding["line"] == 1

    def test_finding_render_format(self):
        finding = Finding(
            rule="mutable-default",
            message="boom",
            path="repro/core/mod.py",
            line=3,
            column=4,
        )
        assert finding.render() == (
            "repro/core/mod.py:3:4: [error] mutable-default: boom"
        )

    def test_cli_exit_codes(self, tmp_path, capsys):
        clean = tmp_path / "clean"
        write(clean, "repro/core/mod.py", "def f(x=None):\n    return x\n")
        dirty = tmp_path / "dirty"
        write(dirty, "repro/core/mod.py", "def f(x=[]):\n    return x\n")

        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        assert main([]) == 2  # no paths
        assert main([str(clean), "--rules", "no-such-rule"]) == 2
        capsys.readouterr()

    def test_cli_json_output(self, tmp_path, capsys):
        write(tmp_path, "repro/core/mod.py", "def f(x=[]):\n    return x\n")
        assert main([str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["error"] == 1

    def test_cli_rules_filter(self, tmp_path, capsys):
        write(tmp_path, "repro/core/mod.py", "def f(x=[]):\n    return x\n")
        assert main([str(tmp_path), "--rules", "broad-except"]) == 0
        capsys.readouterr()

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULES:
            assert rule_id in out

    def test_syntax_error_reported_as_parse_error(self, tmp_path):
        write(tmp_path, "repro/core/mod.py", "def f(:\n")
        report = lint(tmp_path)
        assert rule_ids(report) == ["parse-error"]
        assert report.failed()


# ---------------------------------------------------------------------------
# self-check: the real tree lints clean
# ---------------------------------------------------------------------------


class TestSelfCheck:
    def test_src_tree_is_clean_under_strict(self):
        report = run_lint([REPO_ROOT / "src"])
        assert report.files_checked > 0
        findings = report.active_findings(strict=True)
        assert findings == [], "\n".join(f.render() for f in findings)
        # Every suppression that fired carries a justification.
        for finding, suppression in report.suppressed:
            assert suppression.justification, finding.render()
