"""Tests for tasks, schedule primitives, lowering, programs and ASTs."""

import numpy as np
import pytest

from repro.errors import ScheduleError, TIRError
from repro.ops import dense
from repro.tir.ast import LEAF_MARKER, ast_summary, build_ast, preorder_serialize
from repro.tir.buffer import Buffer
from repro.tir.lower import lower
from repro.tir.program import TensorProgram
from repro.tir.schedule import (
    AnnotateStep,
    CacheStep,
    FuseStep,
    ReorderStep,
    Schedule,
    SplitStep,
    random_schedule,
)
from repro.tir.stmt import LoopKind
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task


class TestTask:
    def test_spatial_and_reduce_extents(self, dense_task):
        assert dense_task.spatial_extent == 8 * 32
        assert dense_task.reduce_extent == 64

    def test_workload_key_is_stable_and_distinct(self):
        task_a = dense(4, 32, 16, model="m")
        task_b = dense(4, 32, 16, model="m")
        task_c = dense(4, 32, 32, model="m")
        assert task_a.workload_key == task_b.workload_key
        assert task_a.workload_key != task_c.workload_key

    def test_duplicate_iter_var_names_rejected(self):
        buffer = Buffer("o", (4,))
        with pytest.raises(TIRError):
            Task(
                "bad",
                {},
                (IterVar("i", 4), IterVar("i", 8)),
                StatementSpec("s", buffer, ("i",)),
            )

    def test_statement_must_cover_spatial_axes(self):
        buffer = Buffer("o", (4, 4))
        with pytest.raises(TIRError):
            Task(
                "bad",
                {},
                (IterVar("i", 4), IterVar("j", 4)),
                StatementSpec("s", buffer, ("i",)),
            )

    def test_naive_flops_positive_and_scales(self):
        small = dense(2, 16, 16).naive_flops()
        large = dense(2, 64, 64).naive_flops()
        assert 0 < small < large

    def test_input_and_output_buffers(self, dense_task):
        names = {buffer.name for buffer in dense_task.input_buffers}
        assert "data" in names and "weight" in names
        assert dense_task.output_buffer.name == "dense"


class TestSchedulePrimitives:
    def test_split_validation(self):
        with pytest.raises(ScheduleError):
            SplitStep("i", ())
        with pytest.raises(ScheduleError):
            SplitStep("i", (0,))

    def test_fuse_needs_two_loops(self):
        with pytest.raises(ScheduleError):
            FuseStep(("i",))

    def test_annotation_validation(self):
        with pytest.raises(ScheduleError):
            AnnotateStep("i", "hyperthread")

    def test_cache_scope_validation(self):
        with pytest.raises(ScheduleError):
            CacheStep("data", scope="l3")

    def test_primitive_counts(self):
        schedule = Schedule().split("i", [4]).annotate("i.1", "vectorize").cache("data")
        counts = schedule.primitive_counts()
        assert counts["split"] == 1 and counts["annotate"] == 1 and counts["cache"] == 1
        assert schedule.annotation_counts()["vectorize"] == 1
        assert len(schedule) == 3

    def test_split_factor_stats(self):
        schedule = Schedule().split("i", [4, 8])
        mean, maximum = schedule.split_factor_stats()
        assert mean == pytest.approx(6.0)
        assert maximum == 8.0

    def test_random_schedule_is_deterministic_per_seed(self, dense_task):
        first = random_schedule(dense_task, np.random.default_rng(3), "gpu")
        second = random_schedule(dense_task, np.random.default_rng(3), "gpu")
        assert [type(s).__name__ for s in first.steps] == [type(s).__name__ for s in second.steps]


class TestLowering:
    def test_default_lowering_structure(self, dense_task):
        program = lower(dense_task)
        # init + update + bias + relu epilogues
        assert program.num_leaves == 4
        assert program.stats.max_loop_depth >= 2

    def test_split_increases_loop_depth(self, dense_task):
        base = lower(dense_task)
        tiled = lower(dense_task, Schedule().split("b", [4]).split("o", [8]))
        assert tiled.stats.max_loop_depth > base.stats.max_loop_depth

    def test_split_preserves_total_flops_within_padding(self, dense_task):
        base = lower(dense_task).stats.total_flops
        tiled = lower(dense_task, Schedule().split("o", [8])).stats.total_flops
        # ceil-division padding can only add iterations, never remove them.
        assert tiled >= base
        assert tiled <= base * 1.5

    def test_annotations_set_loop_kinds(self, dense_task):
        program = lower(dense_task, Schedule().annotate("b", "parallel").annotate("o", "vectorize"))
        assert program.stats.parallel_extent == 8
        assert program.stats.vectorized_extent == 32

    def test_unknown_annotation_target_is_ignored(self, dense_task):
        program = lower(dense_task, Schedule().annotate("nope", "parallel"))
        assert program.stats.parallel_extent == 1

    def test_cache_step_adds_leaf(self, dense_task):
        plain = lower(dense_task)
        cached = lower(dense_task, Schedule().cache("data", "shared"))
        assert cached.num_leaves == plain.num_leaves + 1
        assert cached.stats.num_cache_stages == 1

    def test_cache_unknown_buffer_raises(self, dense_task):
        with pytest.raises(ScheduleError):
            lower(dense_task, Schedule().cache("ghost"))

    def test_fuse_reduces_loop_count(self, dense_task):
        fused = lower(dense_task, Schedule().fuse(("b", "o")))
        base = lower(dense_task)
        assert fused.stats.max_loop_depth == base.stats.max_loop_depth - 1

    def test_fuse_mixed_kinds_raises(self, dense_task):
        with pytest.raises(ScheduleError):
            lower(dense_task, Schedule().fuse(("o", "k")))

    def test_reorder_changes_outermost_loop(self, dense_task):
        program = lower(dense_task, Schedule().reorder(("o", "b")))
        outer_loop = program.leaf_records[0].loops[0]
        assert outer_loop.name == "o"


class TestProgramStats:
    def test_leaf_records_trip_counts(self, dense_program):
        for leaf in dense_program.leaf_records:
            assert leaf.trip_count >= 1
            assert leaf.total_flops >= 0

    def test_stats_totals_are_sums_of_leaves(self, dense_program):
        stats = dense_program.stats
        assert stats.total_flops == pytest.approx(
            sum(leaf.total_flops for leaf in dense_program.leaf_records)
        )
        assert stats.num_leaves == len(dense_program.leaf_records)

    def test_arithmetic_intensity_positive(self, dense_program):
        assert dense_program.stats.arithmetic_intensity > 0

    def test_describe_contains_task_name(self, dense_program):
        assert "dense" in dense_program.describe()


class TestAST:
    def test_ast_counts_match_program(self, dense_program):
        root = build_ast(dense_program)
        assert root.num_leaves() == dense_program.num_leaves
        assert root.num_nodes() >= root.num_leaves()

    def test_preorder_contains_marker_per_leaf(self, dense_program):
        root = build_ast(dense_program)
        sequence, leaf_positions = preorder_serialize(root)
        assert sequence.count(LEAF_MARKER) == root.num_leaves()
        assert len(leaf_positions) == root.num_leaves()
        assert leaf_positions == sorted(leaf_positions)

    def test_ast_summary_keys(self, dense_program):
        summary = ast_summary(dense_program)
        assert set(summary) == {"num_nodes", "num_leaves", "depth"}
        assert summary["depth"] > 1
