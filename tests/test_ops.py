"""Tests for the operator library (repro.ops)."""

import numpy as np
import pytest

from repro.errors import TIRError
from repro.ops import (
    OP_BUILDERS,
    attention_context,
    attention_scores,
    batch_matmul,
    batch_norm_inference,
    build_op,
    conv2d,
    dense,
    depthwise_conv2d,
    elementwise_binary,
    elementwise_unary,
    embedding_lookup,
    global_avg_pool2d,
    layer_norm,
    lstm_cell,
    pool2d,
    reduce_op,
    softmax,
)
from repro.ops.common import conv_out_dim
from repro.tir.lower import lower
from repro.tir.schedule import random_schedule

# Representative keyword arguments for every registered operator builder.
SAMPLE_KWARGS = {
    "conv2d": dict(batch=1, in_channels=8, out_channels=16, height=14, width=14),
    "depthwise_conv2d": dict(batch=1, channels=8, height=14, width=14),
    "dense": dict(batch=4, in_features=64, out_features=32),
    "batch_matmul": dict(batch=2, rows=16, cols=16, inner=32),
    "elementwise_unary": dict(shape=(4, 64), kind="gelu"),
    "elementwise_binary": dict(shape=(4, 64), kind="add"),
    "pool2d": dict(batch=1, channels=8, height=16, width=16),
    "global_avg_pool2d": dict(batch=1, channels=32, height=7, width=7),
    "batch_norm_inference": dict(batch=1, channels=8, height=14, width=14),
    "layer_norm": dict(rows=16, features=64),
    "softmax": dict(rows=32, features=64),
    "attention_scores": dict(batch_heads=4, seq_len=32, head_dim=16),
    "attention_context": dict(batch_heads=4, seq_len=32, head_dim=16),
    "lstm_cell": dict(batch=4, input_size=32, hidden_size=32),
    "reduce_op": dict(shape=(8, 64), axis=1, kind="sum"),
    "embedding_lookup": dict(num_tokens=32, vocab_size=1000, embed_dim=64),
}


class TestRegistry:
    def test_sample_kwargs_cover_all_builders(self):
        assert set(SAMPLE_KWARGS) == set(OP_BUILDERS)

    def test_build_op_unknown_raises(self):
        with pytest.raises(TIRError):
            build_op("transpose")

    @pytest.mark.parametrize("name", sorted(OP_BUILDERS))
    def test_every_builder_produces_valid_lowerable_task(self, name):
        task = build_op(name, **SAMPLE_KWARGS[name], model="unit")
        assert task.model == "unit"
        assert task.spatial_extent >= 1
        assert task.naive_flops() > 0
        program = lower(task, random_schedule(task, np.random.default_rng(0), "gpu"))
        assert program.num_leaves >= 1
        assert program.stats.total_flops > 0
        assert program.stats.total_bytes > 0


class TestConvGeometry:
    def test_conv_out_dim(self):
        assert conv_out_dim(14, 3, 1, 1) == 14
        assert conv_out_dim(14, 3, 2, 1) == 7
        assert conv_out_dim(7, 1, 1, 0) == 7

    def test_invalid_geometry_raises(self):
        with pytest.raises(TIRError):
            conv_out_dim(2, 7, 1, 0)

    def test_conv_flops_scale_with_channels(self):
        small = conv2d(1, 8, 8, 14, 14).naive_flops()
        large = conv2d(1, 16, 16, 14, 14).naive_flops()
        assert large > 3 * small

    def test_stride_reduces_output_work(self):
        dense_stride = conv2d(1, 8, 8, 16, 16, stride=1).naive_flops()
        sparse_stride = conv2d(1, 8, 8, 16, 16, stride=2).naive_flops()
        assert sparse_stride < dense_stride

    def test_depthwise_much_cheaper_than_full_conv(self):
        full = conv2d(1, 32, 32, 14, 14).naive_flops()
        depthwise = depthwise_conv2d(1, 32, 14, 14).naive_flops()
        assert depthwise < full / 4


class TestFusionEpilogues:
    def test_conv_fused_epilogues_add_leaves(self):
        fused = conv2d(1, 8, 8, 8, 8, bias=True, activation="relu", residual=True)
        bare = conv2d(1, 8, 8, 8, 8, bias=False, activation=None)
        assert len(fused.epilogues) == 3
        assert len(bare.epilogues) == 0

    def test_dense_activation_changes_workload_key(self):
        assert dense(4, 32, 32, activation="relu").workload_key != dense(4, 32, 32).workload_key

    def test_unknown_activation_raises(self):
        with pytest.raises(TIRError):
            dense(4, 32, 32, activation="swish")


class TestSpecificOps:
    def test_matmul_flops_formula(self):
        task = batch_matmul(2, 8, 8, 8)
        # 2 * b*m*n*k multiply-adds (1 mul + 1 accumulate per point).
        assert task.naive_flops() == pytest.approx(2 * 2 * 8 * 8 * 8, rel=0.01)

    def test_softmax_uses_exp_intrinsic(self):
        task = softmax(8, 16)
        assert "exp" in task.body.intrinsics

    def test_embedding_uses_gather_pattern(self):
        task = embedding_lookup(16, 100, 32)
        patterns = {read.pattern for read in task.body.reads}
        assert "gather" in patterns

    def test_pooling_kinds(self):
        assert pool2d(1, 4, 8, 8, kind="max").body.intrinsics == ("max",)
        assert pool2d(1, 4, 8, 8, kind="avg").body.intrinsics == ()
        with pytest.raises(TIRError):
            pool2d(1, 4, 8, 8, kind="median")

    def test_reduce_axis_handling(self):
        task = reduce_op((4, 8, 16), axis=1)
        assert task.reduce_extent == 8
        assert task.spatial_extent == 4 * 16

    def test_reduce_invalid_kind(self):
        with pytest.raises(TIRError):
            reduce_op((4, 4), kind="median")

    def test_elementwise_invalid_kinds(self):
        with pytest.raises(TIRError):
            elementwise_unary((4,), kind="swish")
        with pytest.raises(TIRError):
            elementwise_binary((4,), kind="xor")

    def test_lstm_cell_has_gate_epilogues(self):
        task = lstm_cell(4, 32, 32)
        names = [spec.name for spec in task.epilogues]
        assert any("gate" in name for name in names)
        assert task.reduce_extent == 64

    def test_layer_norm_and_batch_norm_leaf_counts(self):
        layer_norm_leaves = lower(layer_norm(8, 32)).num_leaves
        batch_norm_leaves = lower(batch_norm_inference(1, 8, 8, 8)).num_leaves
        assert layer_norm_leaves == 3
        assert batch_norm_leaves == 2

    def test_attention_shapes_consistent(self):
        scores = attention_scores(4, 32, 16)
        context = attention_context(4, 32, 16)
        assert scores.body.output.shape == (4, 32, 32)
        assert context.body.output.shape == (4, 32, 16)

    def test_global_avg_pool_reduces_spatial_dims(self):
        task = global_avg_pool2d(2, 16, 7, 7)
        assert task.reduce_extent == 49
        assert task.output_buffer.shape == (2, 16)
