"""Tests for the autodiff engine, including numerical gradient checks."""

import numpy as np
import pytest

from repro.errors import ModelError
from repro.nn.tensor import Tensor, concatenate, no_grad, stack


def numerical_gradient(fn, arrays, index, eps=1e-6):
    """Central-difference gradient of ``fn`` w.r.t. ``arrays[index]``."""
    base = arrays[index]
    grad = np.zeros_like(base)
    iterator = np.nditer(base, flags=["multi_index"])
    for _ in iterator:
        idx = iterator.multi_index
        plus = [a.copy() for a in arrays]
        minus = [a.copy() for a in arrays]
        plus[index][idx] += eps
        minus[index][idx] -= eps
        grad[idx] = (fn(*plus) - fn(*minus)) / (2 * eps)
    return grad


def check_gradients(fn, shapes, seed=0, tol=1e-5):
    """Compare autodiff gradients with numerical gradients."""
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=shape) for shape in shapes]
    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = fn(*tensors)
    out.backward()

    def scalar_fn(*raw):
        return float(fn(*[Tensor(r) for r in raw]).data.sum())

    for index, tensor in enumerate(tensors):
        numeric = numerical_gradient(scalar_fn, arrays, index)
        assert tensor.grad is not None
        np.testing.assert_allclose(tensor.grad, numeric, atol=tol, rtol=1e-4)


class TestGradientChecks:
    def test_add_mul_broadcasting(self):
        check_gradients(lambda a, b: ((a + b) * a).sum(), [(3, 4), (4,)])

    def test_matmul_2d(self):
        check_gradients(lambda a, b: (a @ b).sum(), [(3, 4), (4, 5)])

    def test_batched_matmul_with_broadcast_rhs(self):
        check_gradients(lambda a, b: (a @ b).sum(), [(2, 3, 4), (4, 5)])

    def test_division_and_power(self):
        check_gradients(lambda a, b: ((a / (b * b + 1.0)) ** 2.0).sum(), [(4, 3), (4, 3)])

    def test_activations(self):
        check_gradients(lambda x: (x.tanh() + x.sigmoid() + x.relu() + x.gelu()).sum(), [(5, 4)])

    def test_exp_log_sqrt_abs(self):
        check_gradients(lambda x: ((x * x + 1.0).log() + x.abs() + (x * x).sqrt()).sum(), [(6,)])

    def test_softmax_and_max(self):
        check_gradients(lambda x: (x.softmax(axis=-1) * x.max(axis=1, keepdims=True)).sum(), [(4, 5)])

    def test_mean_sum_axes(self):
        check_gradients(lambda x: x.mean(axis=0).sum() + x.sum(axis=1).mean(), [(3, 6)])

    def test_reshape_transpose_getitem(self):
        check_gradients(
            lambda x: x.reshape(6, 2).transpose(1, 0)[0].sum() + x[1, :, 1].sum(), [(3, 2, 2)]
        )

    def test_concatenate_and_stack(self):
        check_gradients(
            lambda a, b: (concatenate([a, b], axis=1) * 2.0).sum() + stack([a, b], axis=0).mean(),
            [(3, 2), (3, 2)],
        )

    def test_clip(self):
        check_gradients(lambda x: x.clip(-0.5, 0.5).sum(), [(4, 4)])


class TestTensorBehaviour:
    def test_item_requires_scalar(self):
        assert Tensor([[3.0]]).item() == 3.0
        with pytest.raises(ModelError):
            Tensor([1.0, 2.0]).item()

    def test_backward_requires_grad(self):
        with pytest.raises(ModelError):
            Tensor([1.0]).backward()

    def test_backward_requires_scalar_without_grad_argument(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        with pytest.raises(ModelError):
            (t * 2).backward()

    def test_grad_accumulates_across_uses(self):
        x = Tensor([2.0], requires_grad=True)
        y = x * 3 + x * 4
        y.backward()
        assert x.grad[0] == pytest.approx(7.0)

    def test_detach_cuts_graph(self):
        x = Tensor([2.0], requires_grad=True)
        y = (x.detach() * 5).sum()
        assert not y.requires_grad

    def test_no_grad_context(self):
        x = Tensor([1.0], requires_grad=True)
        with no_grad():
            y = x * 2
        assert not y.requires_grad
        z = x * 2
        assert z.requires_grad

    def test_zero_grad(self):
        x = Tensor([1.0], requires_grad=True)
        (x * 2).sum().backward()
        assert x.grad is not None
        x.zero_grad()
        assert x.grad is None

    def test_shape_properties(self):
        t = Tensor(np.zeros((2, 3)))
        assert t.shape == (2, 3) and t.ndim == 2 and t.size == 6

    def test_right_hand_operators(self):
        x = Tensor([2.0], requires_grad=True)
        y = (3.0 - x) + (1.0 / x) + 2.0 * x
        y.sum().backward()
        assert x.grad is not None


class TestGradModeThreadLocality:
    def test_no_grad_is_thread_local(self):
        """A no_grad block in one thread must not disable grads in another.

        Regression: grad mode used to be a process global with save/restore
        semantics, so the serving daemon's concurrent inference threads
        could interleave their no_grad enter/exit and leave gradients
        disabled for a training thread forever ('called backward() on a
        tensor that does not require grad').
        """
        import threading

        entered = threading.Event()
        release = threading.Event()

        def inference() -> None:
            with no_grad():
                entered.set()
                release.wait(timeout=10)

        thread = threading.Thread(target=inference)
        thread.start()
        try:
            assert entered.wait(timeout=10)
            # The other thread sits inside no_grad; this thread still builds
            # a graph and backpropagates.
            x = Tensor([2.0], requires_grad=True)
            (x * 3).sum().backward()
            assert x.grad is not None
        finally:
            release.set()
            thread.join()
        # And the inference thread's exit must not clobber this thread.
        y = Tensor([1.0], requires_grad=True)
        assert y.requires_grad

    def test_no_grad_nesting_restores_mode(self):
        with no_grad():
            with no_grad():
                assert not Tensor([1.0], requires_grad=True).requires_grad
            assert not Tensor([1.0], requires_grad=True).requires_grad
        assert Tensor([1.0], requires_grad=True).requires_grad
