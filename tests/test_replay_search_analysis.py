"""Tests for the replayer, end-to-end prediction, schedule search and analysis."""

import numpy as np
import pytest

from repro.analysis.distribution import (
    ast_node_distribution,
    histogram,
    latency_distribution,
    normality_score,
    skewness,
)
from repro.analysis.projection import domain_overlap, pca_project, tsne_project
from repro.devices.spec import get_device
from repro.errors import ReplayError, ReproError, SearchError
from repro.graph.dfg import DFGNode, TIRDataFlowGraph, build_dfg
from repro.graph.zoo import build_model
from repro.replay.e2e import measure_end_to_end, predict_end_to_end
from repro.replay.replayer import Replayer
from repro.search.ansor import evolutionary_search, search_model_schedules


class TestReplayer:
    def _chain_dfg(self, dense_program, durations):
        dfg = TIRDataFlowGraph("chain")
        previous = None
        for index, duration in enumerate(durations):
            name = f"node{index}"
            dfg.add_node(
                DFGNode(name=name, program=dense_program, inputs=[previous] if previous else [],
                        duration_s=duration)
            )
            previous = name
        return dfg

    def test_serial_chain_sums_durations(self, dense_program):
        durations = [1e-3, 2e-3, 3e-3]
        result = Replayer().replay(self._chain_dfg(dense_program, durations))
        assert result.iteration_time_s == pytest.approx(sum(durations))

    def test_gap_added_between_kernels(self, dense_program):
        durations = [1e-3, 1e-3]
        with_gap = Replayer(gap_s=5e-4).replay(self._chain_dfg(dense_program, durations))
        without_gap = Replayer().replay(self._chain_dfg(dense_program, durations))
        assert with_gap.iteration_time_s > without_gap.iteration_time_s

    def test_parallel_branches_overlap_with_multiple_slots(self, dense_program):
        dfg = TIRDataFlowGraph("diamond")
        dfg.add_node(DFGNode("root", dense_program, [], duration_s=1e-3))
        dfg.add_node(DFGNode("left", dense_program, ["root"], duration_s=2e-3, device_slot=0))
        dfg.add_node(DFGNode("right", dense_program, ["root"], duration_s=2e-3, device_slot=1))
        dfg.add_node(DFGNode("sink", dense_program, ["left", "right"], duration_s=1e-3))
        serial = Replayer(num_device_slots=1).replay(dfg).iteration_time_s
        parallel = Replayer(num_device_slots=2).replay(dfg).iteration_time_s
        assert parallel < serial
        assert parallel == pytest.approx(4e-3, rel=1e-6)

    def test_dependencies_respected_in_timeline(self, dense_program):
        dfg = self._chain_dfg(dense_program, [1e-3, 1e-3, 1e-3])
        result = Replayer().replay(dfg)
        assert result.timeline["node0"].end_s <= result.timeline["node1"].start_s
        assert result.timeline["node1"].end_s <= result.timeline["node2"].start_s

    def test_empty_dfg_raises(self):
        with pytest.raises(ReplayError):
            Replayer().replay(TIRDataFlowGraph("empty"))

    def test_invalid_slot_count(self):
        with pytest.raises(ReplayError):
            Replayer(num_device_slots=0)


class TestEndToEnd:
    def test_measured_e2e_is_positive_and_below_serial_sum(self):
        result = measure_end_to_end("bert_tiny", "t4", seed=0)
        assert result.iteration_time_s > 0
        serial_sum = sum(result.durations.values())
        assert result.iteration_time_s >= max(result.durations.values())
        # With per-kernel gaps the iteration time can slightly exceed the sum
        # of unique durations but must stay within a small factor of it.
        assert result.iteration_time_s < serial_sum * 50

    def test_predicted_e2e_with_oracle_costs_matches_measurement(self):
        device = get_device("t4")
        from repro.devices.simulator import DeviceSimulator

        simulator = DeviceSimulator(device, seed=0)
        oracle = lambda programs: {p.task.workload_key: simulator.measure(p) for p in programs}
        predicted = predict_end_to_end("bert_tiny", device, oracle, seed=0)
        measured = measure_end_to_end("bert_tiny", device, seed=0)
        assert predicted.iteration_time_s == pytest.approx(measured.iteration_time_s, rel=1e-6)

    def test_missing_cost_predictions_raise(self):
        with pytest.raises(ReplayError):
            predict_end_to_end("bert_tiny", "t4", lambda programs: {}, seed=0)

    def test_accelerator_splits_contraction_nodes(self):
        result = measure_end_to_end("bert_tiny", "hl100", seed=0)
        assert any("#engine" in name for name in result.timeline)
        slots = {node.device_slot for node in result.timeline.values()}
        assert len(slots) == get_device("hl100").gemm_engines

    def test_gpu_does_not_split_nodes(self):
        result = measure_end_to_end("bert_tiny", "t4", seed=0)
        assert not any("#engine" in name for name in result.timeline)


class TestScheduleSearch:
    def test_best_latency_is_monotone_over_rounds(self, conv_task):
        oracle_scores = lambda programs: np.asarray([p.stats.total_flops for p in programs])
        result = evolutionary_search(conv_task, "t4", oracle_scores, num_rounds=4, population=6,
                                     measurements_per_round=2, seed=0)
        history = result.best_latency_per_round
        assert len(history) == 4
        assert all(a >= b - 1e-18 for a, b in zip(history, history[1:]))
        assert result.num_measurements == 8
        assert result.best_schedule is not None

    def test_good_cost_model_beats_adversarial_one(self, conv_task):
        from repro.devices.simulator import DeviceSimulator

        simulator = DeviceSimulator(get_device("t4"), seed=0)
        oracle = lambda programs: np.asarray([simulator.measure(p) for p in programs])
        adversarial = lambda programs: -oracle(programs)  # prefers the slowest candidates
        good = evolutionary_search(conv_task, "t4", oracle, num_rounds=5, population=8,
                                   measurements_per_round=2, seed=1)
        bad = evolutionary_search(conv_task, "t4", adversarial, num_rounds=5, population=8,
                                  measurements_per_round=2, seed=1)
        assert good.best_latency_s <= bad.best_latency_s

    def test_wrong_score_count_raises(self, conv_task):
        with pytest.raises(SearchError):
            evolutionary_search(conv_task, "t4", lambda programs: np.zeros(1), num_rounds=1,
                                population=4, measurements_per_round=1)

    def test_search_model_schedules_covers_all_tasks(self):
        model = build_model("bert_tiny")
        oracle = lambda programs: np.asarray([p.stats.total_flops for p in programs])
        results = search_model_schedules(model, "t4", oracle, num_rounds=1, population=3,
                                         measurements_per_round=1, seed=0)
        assert set(results) == set(model.unique_tasks())


class TestAnalysis:
    def test_ast_distribution_statistics(self, t4_splits):
        programs = [record.program for record in t4_splits.train[:50]]
        distribution = ast_node_distribution(programs)
        assert distribution["num_nodes"].min() >= distribution["num_leaves"].min()
        assert distribution["depth"].min() >= 2

    def test_leaf_count_range_much_smaller_than_node_range(self, t4_splits):
        # The Fig. 2 observation that motivates Compact ASTs.
        programs = [record.program for record in t4_splits.train[:200]]
        distribution = ast_node_distribution(programs)
        node_range = distribution["num_nodes"].max() - distribution["num_nodes"].min()
        leaf_range = distribution["num_leaves"].max() - distribution["num_leaves"].min()
        assert leaf_range <= node_range

    def test_latency_distribution_and_skew(self, t4_splits):
        latencies = latency_distribution(t4_splits.train)
        assert skewness(latencies) > 1.0  # long right tail
        assert normality_score(np.log(latencies)) > normality_score(latencies)

    def test_histogram_output(self):
        result = histogram(np.arange(100), bins=10)
        assert len(result["counts"]) == 10
        assert len(result["edges"]) == 11

    def test_empty_inputs_raise(self):
        with pytest.raises(ReproError):
            ast_node_distribution([])
        with pytest.raises(ReproError):
            latency_distribution([])
        with pytest.raises(ReproError):
            normality_score(np.arange(3))

    def test_pca_projection_shape(self):
        x = np.random.default_rng(0).normal(size=(40, 10))
        assert pca_project(x, dim=2).shape == (40, 2)

    def test_tsne_separates_well_separated_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, size=(25, 6))
        b = rng.normal(8.0, 0.1, size=(25, 6))
        projection = tsne_project(np.vstack([a, b]), iterations=120, seed=0)
        labels = np.array([0] * 25 + [1] * 25)
        assert domain_overlap(projection, labels, k=5) < 0.2

    def test_domain_overlap_of_mixed_points_is_high(self):
        rng = np.random.default_rng(1)
        projection = rng.normal(size=(60, 2))
        labels = rng.integers(0, 2, size=60)
        assert domain_overlap(projection, labels, k=5) > 0.25

    def test_projection_input_validation(self):
        with pytest.raises(ReproError):
            pca_project(np.zeros((1, 3)))
        with pytest.raises(ReproError):
            tsne_project(np.zeros((3, 3)))
        with pytest.raises(ReproError):
            domain_overlap(np.zeros((5, 2)), np.zeros(4))
