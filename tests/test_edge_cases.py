"""Additional edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.baselines.habitat import roofline_scale
from repro.baselines.tlp import TLPCostModel
from repro.core.config import PredictorConfig
from repro.core.predictor import CDMPPPredictor
from repro.core.scale import get_scale
from repro.devices.simulator import DeviceSimulator
from repro.devices.spec import get_device
from repro.errors import FeatureError, ScheduleError, TrainingError
from repro.features.pipeline import FeatureSet, featurize_programs
from repro.graph.dfg import build_dfg
from repro.graph.zoo import build_model
from repro.ops import conv2d, dense, elementwise_unary, softmax
from repro.replay.replayer import Replayer
from repro.tir.lower import lower
from repro.tir.schedule import Schedule
from repro.tir.task import IterVar, ReadSpec, StatementSpec, Task
from repro.tir.buffer import Buffer


class TestSimulatorAcrossOpFamilies:
    """The simulator should behave sensibly for every operator family."""

    @pytest.mark.parametrize("device_name", ["t4", "epyc-7452", "hl100"])
    def test_memory_bound_ops_are_memory_bound(self, device_name):
        program = lower(elementwise_unary((64, 4096), "relu", model="edge"))
        breakdown = DeviceSimulator(get_device(device_name), seed=0).breakdown(program)
        assert breakdown.bound == "memory"

    def test_matmul_latency_dominates_equal_size_elementwise(self):
        device = get_device("a100")
        simulator = DeviceSimulator(device, seed=0)
        matmul = simulator.measure(lower(dense(64, 2048, 2048, model="edge")))
        relu = simulator.measure(lower(elementwise_unary((64, 2048), "relu", model="edge")))
        # Same output size, vastly different FLOPs: the contraction must be
        # far slower than the elementwise pass on any device.
        assert matmul > 20 * relu

    def test_launch_overhead_dominates_tiny_kernels(self):
        tiny = lower(elementwise_unary((4, 4), "relu", model="edge"))
        device = get_device("t4")
        latency = DeviceSimulator(device, seed=0).measure(tiny)
        assert latency < 3 * device.launch_overhead_us * 1e-6

    def test_noise_is_bounded(self):
        program = lower(dense(16, 256, 256, model="edge"))
        device = get_device("v100")
        values = [DeviceSimulator(device, seed=s).measure(program) for s in range(20)]
        spread = (max(values) - min(values)) / np.mean(values)
        assert spread < 0.5


class TestSingleStatementTasks:
    def test_task_with_no_reads_lowers(self):
        out = Buffer("out", (8, 8))
        task = Task(
            "fill",
            {"n": 8},
            (IterVar("i", 8), IterVar("j", 8)),
            StatementSpec("fill", out, ("i", "j")),
        )
        program = lower(task)
        assert program.num_leaves == 1
        assert program.stats.total_bytes_read == 0.0

    def test_scalar_task_without_spatial_axes(self):
        out = Buffer("out", (1,))
        data = Buffer("data", (128,))
        task = Task(
            "reduce_all",
            {},
            (IterVar("d0", 1), IterVar("k", 128, "reduce")),
            StatementSpec("sum", out, ("d0",), reads=(ReadSpec(data, ("k",)),), reduction=True),
        )
        program = lower(task, Schedule().split("k", [16]))
        assert program.stats.total_flops > 0
        features = featurize_programs([program], "t4")
        assert len(features) == 1


class TestPredictorEdgeCases:
    def test_single_sample_batch(self, t4_features):
        train, _, _ = t4_features
        predictor = CDMPPPredictor(PredictorConfig(d_model=16, num_heads=2, num_encoder_layers=1,
                                                   embedding_dim=16, decoder_hidden=(16,)), seed=0)
        x, mask, counts, dev = predictor.tensors_from(train, np.array([0]))
        assert predictor(x, mask, counts, dev).shape == (1,)

    def test_predictor_without_device_features(self, t4_features):
        train, _, _ = t4_features
        config = PredictorConfig(d_model=16, num_heads=2, num_encoder_layers=1, embedding_dim=16,
                                 decoder_hidden=(16,), use_device_features=False)
        predictor = CDMPPPredictor(config, seed=0)
        x, mask, counts, _ = predictor.tensors_from(train, np.arange(4))
        out = predictor(x, mask, counts, None)
        assert out.shape == (4,)

    def test_max_leaves_padding_matches_scale_configs(self):
        for scale_name in ("tiny", "small", "medium"):
            config = get_scale(scale_name).predictor_config()
            assert config.max_leaves >= 12  # covers every op builder in the zoo


class TestBaselineInternals:
    def test_roofline_scale_directions(self):
        k80, a100 = get_device("k80"), get_device("a100")
        compute_bound = roofline_scale(1e-3, flops=1e9, bytes_moved=1e3, source=k80, target=a100)
        memory_bound = roofline_scale(1e-3, flops=1e3, bytes_moved=1e9, source=k80, target=a100)
        # Scaling K80 -> A100 must predict a speed-up in both regimes.
        assert compute_bound < 1e-3
        assert memory_bound < 1e-3

    def test_tlp_relative_targets_are_at_least_one(self, t4_splits):
        model = TLPCostModel(epochs=1, seed=0)
        relative = model._relative_targets(t4_splits.train)
        assert np.all(relative >= 1.0 - 1e-12)


class TestReplayerEdgeCases:
    def test_single_node_graph(self, dense_program):
        from repro.graph.dfg import DFGNode, TIRDataFlowGraph

        dfg = TIRDataFlowGraph("single")
        dfg.add_node(DFGNode("only", dense_program, [], duration_s=1e-3))
        result = Replayer().replay(dfg)
        assert result.iteration_time_s == pytest.approx(1e-3)

    def test_wide_fanout_graph(self, dense_program):
        from repro.graph.dfg import DFGNode, TIRDataFlowGraph

        dfg = TIRDataFlowGraph("fanout")
        dfg.add_node(DFGNode("root", dense_program, [], duration_s=1e-4))
        for index in range(16):
            # Spread the independent leaves across four device slots (the
            # replayer follows the node's slot assignment, as in Algorithm 2).
            dfg.add_node(DFGNode(f"leaf{index}", dense_program, ["root"], duration_s=1e-4,
                                 device_slot=index % 4))
        serial = Replayer(num_device_slots=1).replay(dfg).iteration_time_s
        parallel = Replayer(num_device_slots=4).replay(dfg).iteration_time_s
        assert parallel < serial
        assert parallel >= 1e-4 * (1 + 4) - 1e-12  # root + 16/4 waves of leaves

    def test_replay_deterministic(self):
        model = build_model("mobilenet_v2")
        dfg = build_dfg(model, seed=3)
        durations = {key: 1e-5 for key in dfg.unique_programs()}
        dfg.assign_durations(durations)
        first = Replayer().replay(dfg).iteration_time_s
        dfg.assign_durations(durations)
        second = Replayer().replay(dfg).iteration_time_s
        assert first == pytest.approx(second)


class TestFeatureSetErrors:
    def test_concatenate_dimension_mismatch(self, t4_features):
        train, _, _ = t4_features
        other = FeatureSet(
            x=np.zeros((2, 3, train.feature_dim + 1)),
            mask=np.ones((2, 3)),
            leaf_counts=np.array([3, 3]),
            device_features=np.zeros((2, train.device_features.shape[1])),
            y=np.ones(2),
            task_keys=["a", "b"],
            models=["m", "m"],
            op_types=["dense", "dense"],
            devices=["t4", "t4"],
        )
        with pytest.raises(FeatureError):
            FeatureSet.concatenate([train, other])

    def test_concatenate_empty_list(self):
        with pytest.raises(FeatureError):
            FeatureSet.concatenate([])


class TestScheduleRobustness:
    def test_split_larger_than_extent_still_lowers(self):
        task = dense(2, 8, 8, model="edge")
        program = lower(task, Schedule().split("b", [16]))
        # Outer loop collapses to one iteration; program remains valid.
        assert program.stats.total_flops >= task.naive_flops()

    def test_conflicting_annotations_last_wins(self):
        task = dense(4, 16, 16, model="edge")
        program = lower(task, Schedule().annotate("b", "parallel").annotate("b", "vectorize"))
        assert program.stats.vectorized_extent == 4
        assert program.stats.parallel_extent == 1

    def test_softmax_schedules_lower_without_reduce_axes(self):
        task = softmax(64, 64, model="edge")
        program = lower(task, Schedule().split("r", [8]).annotate("r.0", "parallel"))
        assert program.num_leaves == 2
