"""Tests for the TIR substrate: buffers, expressions, statements."""

import pytest

from repro.errors import TIRError
from repro.tir.buffer import Buffer
from repro.tir.expr import (
    INTRINSIC_FLOPS,
    BinaryOp,
    BufferLoad,
    Call,
    FloatImm,
    IntImm,
    Var,
    add,
    make_const,
    mul,
)
from repro.tir.stmt import ComputeStmt, ForLoop, LoopKind, SeqStmt, format_stmt, iter_compute_stmts


class TestBuffer:
    def test_basic_properties(self):
        buffer = Buffer("x", (4, 8), dtype="float32")
        assert buffer.ndim == 2
        assert buffer.num_elements == 32
        assert buffer.size_bytes == 128
        assert buffer.dtype_bytes == 4

    def test_int8_dtype_bytes(self):
        assert Buffer("q", (10,), dtype="int8").size_bytes == 10

    def test_with_scope_creates_new_name(self):
        cached = Buffer("weight", (4, 4)).with_scope("shared")
        assert cached.scope == "shared"
        assert cached.name != "weight"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"name": "", "shape": (2,)},
            {"name": "x", "shape": (0,)},
            {"name": "x", "shape": (2,), "dtype": "float128"},
            {"name": "x", "shape": (2,), "scope": "l3"},
        ],
    )
    def test_invalid_buffers_raise(self, kwargs):
        with pytest.raises(TIRError):
            Buffer(**kwargs)


class TestExpr:
    def test_binary_op_flops(self):
        expr = BinaryOp("+", Var("i"), BinaryOp("*", Var("j"), IntImm(2)))
        assert expr.flops() == 2.0

    def test_invalid_binary_op_raises(self):
        with pytest.raises(TIRError):
            BinaryOp("^", Var("i"), Var("j"))

    def test_call_flops_include_intrinsic_cost(self):
        expr = Call("exp", (Var("x"),))
        assert expr.flops() == INTRINSIC_FLOPS["exp"]

    def test_unknown_intrinsic_raises(self):
        with pytest.raises(TIRError):
            Call("fancy", (Var("x"),))

    def test_buffer_load_collection(self):
        a = Buffer("a", (8, 8))
        b = Buffer("b", (8,))
        expr = mul(BufferLoad(a, (Var("i"), Var("k"))), BufferLoad(b, (Var("k"),)))
        loads = expr.loads()
        assert len(loads) == 2
        assert {load.buffer.name for load in loads} == {"a", "b"}

    def test_free_vars(self):
        expr = add(Var("i"), mul(Var("j"), FloatImm(2.0)))
        assert expr.free_vars() == {"i", "j"}

    def test_make_const_types(self):
        assert isinstance(make_const(3.0), IntImm)
        assert isinstance(make_const(3.5), FloatImm)

    def test_walk_visits_all_nodes(self):
        expr = add(Var("i"), mul(Var("j"), IntImm(2)))
        assert len(list(expr.walk())) == 5


class TestStmt:
    def _compute(self, reduction=False, init=False):
        out = Buffer("out", (4, 4))
        value = BufferLoad(Buffer("inp", (4, 4)), (Var("i"), Var("j")))
        return ComputeStmt(out, (Var("i"), Var("j")), value, is_reduction=reduction, is_init=init)

    def test_compute_stmt_byte_accounting(self):
        stmt = self._compute()
        assert stmt.bytes_read == 4.0
        assert stmt.bytes_written == 4.0
        assert stmt.num_loads == 1

    def test_reduction_adds_accumulate_flop(self):
        assert self._compute(reduction=True).flops == self._compute().flops + 1.0

    def test_init_and_reduction_conflict(self):
        with pytest.raises(TIRError):
            self._compute(reduction=True, init=True)

    def test_for_loop_rejects_bad_extent(self):
        with pytest.raises(TIRError):
            ForLoop(Var("i"), 0, LoopKind.SERIAL, self._compute())

    def test_seq_stmt_requires_children(self):
        with pytest.raises(TIRError):
            SeqStmt([])

    def test_walk_and_iter_compute(self):
        inner = self._compute()
        loop = ForLoop(Var("i"), 4, LoopKind.PARALLEL, SeqStmt([inner, self._compute()]))
        assert len(list(iter_compute_stmts(loop))) == 2
        assert loop in list(loop.walk())

    def test_format_stmt_mentions_annotation(self):
        loop = ForLoop(Var("i"), 4, LoopKind.VECTORIZED, self._compute())
        text = format_stmt(loop)
        assert "vectorized" in text
        assert "range(4)" in text
