"""Tests for the predictor, trainer, fine-tuning, auto-tuner and API facade."""

import numpy as np
import pytest

from repro.core.api import CDMPP
from repro.core.autotuner import AutoTuner, SearchSpace, configs_from_params
from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.finetune import FineTuner, cross_device_adaptation
from repro.core.predictor import CDMPPPredictor
from repro.core.scale import available_scales, get_scale
from repro.core.trainer import Trainer
from repro.errors import ConfigError, FeatureError, TrainingError
from repro.features.pipeline import featurize_records
from repro.nn.tensor import Tensor


class TestPredictorModel:
    @pytest.fixture(scope="class")
    def predictor(self):
        return CDMPPPredictor(PredictorConfig(d_model=32, num_heads=4, num_encoder_layers=1,
                                              embedding_dim=32, decoder_hidden=(32,)), seed=0)

    def test_forward_shapes(self, predictor, t4_features):
        train, _, _ = t4_features
        x, mask, counts, dev = predictor.tensors_from(train, np.arange(16))
        out = predictor(x, mask, counts, dev)
        assert out.shape == (16,)

    def test_encode_shape_includes_device_embedding(self, predictor, t4_features):
        train, _, _ = t4_features
        x, mask, counts, dev = predictor.tensors_from(train, np.arange(8))
        latent = predictor.encode(x, mask, counts, dev)
        assert latent.shape == (8, predictor.config.embedding_dim + predictor.config.device_embedding_dim)

    def test_batch_order_is_preserved(self, predictor, t4_features):
        train, _, _ = t4_features
        indices = np.arange(12)
        x, mask, counts, dev = predictor.tensors_from(train, indices)
        full = predictor(x, mask, counts, dev).numpy()
        # Predict one-by-one and compare: grouping by leaf count must not
        # permute the outputs.
        singles = []
        for i in indices:
            xi, mi, ci, di = predictor.tensors_from(train, np.array([i]))
            singles.append(predictor(xi, mi, ci, di).numpy()[0])
        np.testing.assert_allclose(full, np.asarray(singles), rtol=1e-8)

    def test_too_many_leaves_raises(self, predictor, t4_features):
        train, _, _ = t4_features
        x, mask, counts, dev = predictor.tensors_from(train, np.arange(4))
        bad_counts = counts.copy()
        bad_counts[0] = predictor.config.max_leaves + 5
        with pytest.raises(FeatureError):
            predictor(x, mask, bad_counts, dev)

    def test_missing_device_features_raises(self, predictor, t4_features):
        train, _, _ = t4_features
        x, mask, counts, _ = predictor.tensors_from(train, np.arange(4))
        with pytest.raises(Exception):
            predictor(x, mask, counts, None)

    def test_gradients_reach_all_used_parameters(self, t4_features):
        train, _, _ = t4_features
        predictor = CDMPPPredictor(PredictorConfig(d_model=16, num_heads=2, num_encoder_layers=1,
                                                   embedding_dim=16, decoder_hidden=(16,)), seed=1)
        x, mask, counts, dev = predictor.tensors_from(train, np.arange(32))
        loss = (predictor(x, mask, counts, dev) ** 2.0).sum()
        loss.backward()
        named = dict(predictor.named_parameters())
        assert named["input_proj.weight"].grad is not None
        assert named["decoder.layers.0.weight"].grad is not None
        assert named["device_mlp.layers.0.weight"].grad is not None


class TestTrainer:
    def test_training_reduces_validation_error(self, t4_features):
        train, valid, _ = t4_features
        trainer = Trainer(
            predictor_config=PredictorConfig(d_model=32, num_heads=4, num_encoder_layers=1,
                                             embedding_dim=32, decoder_hidden=(32,)),
            config=TrainingConfig(epochs=15, batch_size=64, seed=0),
        )
        result = trainer.fit(train, valid)
        assert len(result.history) > 0
        first, last = result.history[0]["train_loss"], result.history[-1]["train_loss"]
        assert last < first
        assert result.throughput_samples_per_s > 0
        assert result.best_valid_mape < 1.5

    def test_trained_model_beats_mean_predictor(self, trained_trainer, t4_features):
        _, _, test = t4_features
        metrics = trained_trainer.evaluate(test)
        mean_prediction = np.full_like(test.y, test.y.mean())
        from repro.core.metrics import mape

        assert metrics["mape"] < mape(mean_prediction, test.y)

    def test_predictions_positive_seconds(self, trained_trainer, t4_features):
        _, _, test = t4_features
        predictions = trained_trainer.predict(test)
        assert predictions.shape == (len(test),)
        assert np.all(predictions > 0)
        assert np.all(predictions < 1.0)  # nothing takes a full second at this scale

    def test_latent_shape(self, trained_trainer, t4_features):
        _, _, test = t4_features
        latent = trained_trainer.latent(test)
        assert latent.shape[0] == len(test)
        assert latent.shape[1] > 0

    def test_predict_before_fit_raises(self, t4_features):
        train, _, _ = t4_features
        trainer = Trainer(config=TrainingConfig(epochs=1))
        with pytest.raises(TrainingError):
            trainer.predict(train)

    def test_empty_training_set_raises(self, trained_trainer, t4_features):
        train, _, _ = t4_features
        with pytest.raises(TrainingError):
            Trainer(config=TrainingConfig(epochs=1)).fit(train.subset([]))


class TestFineTuner:
    def test_finetune_runs_and_reports_history(self, trained_trainer, t4_features, tiny_dataset):
        train, _, _ = t4_features
        target_records = tiny_dataset.records("k80")[:80]
        target = featurize_records(target_records, max_leaves=train.max_leaves)
        finetuner = FineTuner(trained_trainer)
        before_cmd = finetuner.latent_cmd(train, target)
        result = finetuner.finetune(train.subset(range(64)), target, epochs=1)
        assert len(result.history) == 1
        assert before_cmd > 0

    def test_requires_pretrained_trainer(self):
        with pytest.raises(TrainingError):
            FineTuner(Trainer(config=TrainingConfig(epochs=1)))

    def test_cross_device_adaptation_pipeline(self, trained_trainer, t4_features, tiny_dataset):
        train, _, _ = t4_features
        from repro.dataset.splits import split_dataset

        target_records = tiny_dataset.records("k80")
        target_splits = split_dataset(target_records, seed=0)
        target_test = featurize_records(target_splits.test, max_leaves=train.max_leaves)
        result = cross_device_adaptation(
            trained_trainer,
            source_train=train.subset(range(96)),
            target_records=target_splits.train,
            target_test=target_test,
            num_tasks=4,
            epochs=1,
            seed=0,
        )
        assert result.target_device == "k80"
        assert 1 <= len(result.selected_tasks) <= 4
        assert "mape" in result.metrics_before and "mape" in result.metrics_after
        assert result.cmd_before > 0 and result.cmd_after > 0

    def test_unknown_sampling_strategy_raises(self, trained_trainer, t4_features, tiny_dataset):
        train, _, _ = t4_features
        target_records = tiny_dataset.records("k80")[:40]
        target = featurize_records(target_records, max_leaves=train.max_leaves)
        with pytest.raises(TrainingError):
            cross_device_adaptation(
                trained_trainer, train, target_records, target, num_tasks=2, strategy="grid"
            )


class TestAutoTuner:
    def test_search_space_sampling(self):
        space = SearchSpace()
        params = space.sample(np.random.default_rng(0))
        assert set(params) >= {"num_encoder_layers", "learning_rate", "optimizer", "batch_size"}

    def test_configs_from_params(self):
        predictor_cfg, training_cfg = configs_from_params(
            {"d_model": 32, "num_encoder_layers": 1, "decoder_width": 16, "learning_rate": 1e-3,
             "optimizer": "sgd", "scheduler": "step", "batch_size": 32, "lambda_mape": 0.01,
             "weight_decay": 0.0, "cmd_alpha": 0.5}
        )
        assert predictor_cfg.d_model == 32
        assert predictor_cfg.decoder_hidden == (16, 16)
        assert training_cfg.optimizer == "sgd"

    def test_autotuner_finds_a_config(self, t4_features):
        train, valid, _ = t4_features
        tuner = AutoTuner(num_trials=2, initial_epochs=1, final_epochs=2, seed=0)
        result = tuner.search(
            train.subset(range(96)),
            valid,
            base_predictor=PredictorConfig(d_model=32, num_heads=2, num_encoder_layers=1,
                                           embedding_dim=32, decoder_hidden=(32,)),
            base_training=TrainingConfig(epochs=1, batch_size=64, seed=0),
        )
        assert result.best_valid_mape < 10.0
        assert len(result.trials) >= 3  # 2 cheap + at least 1 survivor
        assert result.best_params in [t.params for t in result.trials]

    def test_invalid_tuner_configuration(self):
        with pytest.raises(ConfigError):
            AutoTuner(num_trials=0)
        with pytest.raises(ConfigError):
            AutoTuner(survivor_fraction=0.0)


class TestScales:
    def test_all_scales_available(self):
        assert {"tiny", "small", "medium", "paper"} <= set(available_scales())

    def test_scale_configs_materialise(self):
        scale = get_scale("small")
        assert scale.predictor_config().d_model == scale.d_model
        assert scale.training_config().epochs == scale.epochs
        assert "zoo_models" in scale.dataset_kwargs()

    def test_paper_scale_matches_appendix(self):
        paper = get_scale("paper")
        assert paper.num_encoder_layers == 11
        assert paper.batch_size == 600
        assert paper.num_synthetic_models + len(paper.zoo_models) == 120

    def test_unknown_scale_raises(self):
        with pytest.raises(ConfigError):
            get_scale("huge")


class TestCDMPPFacade:
    @pytest.fixture(scope="class")
    def facade(self, t4_splits):
        scale = get_scale("tiny")
        cdmpp = CDMPP(predictor_config=scale.predictor_config(),
                      training_config=scale.training_config(epochs=4, seed=0))
        cdmpp.pretrain(t4_splits.train, t4_splits.valid)
        return cdmpp

    def test_pretrain_requires_records(self):
        with pytest.raises(TrainingError):
            CDMPP().pretrain([])

    def test_predict_program(self, facade, dense_program):
        latency = facade.predict_program(dense_program, "t4")
        assert 0 < latency < 1.0

    def test_predict_programs_batch(self, facade, t4_splits):
        programs = [record.program for record in t4_splits.test[:5]]
        predictions = facade.predict_programs(programs, "t4")
        assert set(predictions) == {program.task.workload_key for program in programs}
        assert all(value > 0 for value in predictions.values())
        assert facade.predict_programs([], "t4") == {}

    def test_predict_model_end_to_end(self, facade):
        prediction = facade.predict_model("bert_tiny", "t4")
        assert prediction.model == "bert_tiny"
        assert prediction.device == "t4"
        assert prediction.predicted_latency_s > 0
        assert prediction.num_nodes > 5
        assert len(prediction.per_program_latency_s) > 5

    def test_evaluate_and_latent(self, facade, t4_features):
        _, _, test = t4_features
        metrics = facade.evaluate(test)
        assert 0 < metrics["mape"] < 5.0
        assert facade.latent(test).shape[0] == len(test)
