"""Tests for saving and loading trained predictors."""

import numpy as np
import pytest

from repro.core.config import TrainingConfig
from repro.core.persistence import load_trainer, save_trainer
from repro.core.trainer import Trainer
from repro.errors import TrainingError


class TestPersistence:
    def test_roundtrip_preserves_predictions(self, trained_trainer, t4_features, tmp_path):
        _, _, test = t4_features
        path = save_trainer(trained_trainer, tmp_path / "models" / "cdmpp_t4.npz")
        assert path.exists()

        restored = load_trainer(path)
        original = trained_trainer.predict(test)
        reloaded = restored.predict(test)
        np.testing.assert_allclose(reloaded, original, rtol=1e-10)

    def test_roundtrip_preserves_metrics_and_config(self, trained_trainer, t4_features, tmp_path):
        _, _, test = t4_features
        path = save_trainer(trained_trainer, tmp_path / "model.npz")
        restored = load_trainer(path)
        assert restored.predictor.config == trained_trainer.predictor.config
        assert restored.config == trained_trainer.config
        assert restored.transform.name == trained_trainer.transform.name
        original_metrics = trained_trainer.evaluate(test)
        restored_metrics = restored.evaluate(test)
        assert restored_metrics["mape"] == pytest.approx(original_metrics["mape"], rel=1e-9)

    def test_latent_representations_preserved(self, trained_trainer, t4_features, tmp_path):
        _, _, test = t4_features
        restored = load_trainer(save_trainer(trained_trainer, tmp_path / "model.npz"))
        np.testing.assert_allclose(
            restored.latent(test), trained_trainer.latent(test), rtol=1e-10
        )

    def test_cannot_save_unfitted_trainer(self, tmp_path):
        with pytest.raises(TrainingError):
            save_trainer(Trainer(config=TrainingConfig(epochs=1)), tmp_path / "model.npz")

    def test_loading_missing_file_raises(self, tmp_path):
        with pytest.raises(TrainingError):
            load_trainer(tmp_path / "does_not_exist.npz")
