"""Tests for device onboarding (repro.adaptation) and its regression fixes.

Covers the clone-then-finetune contract (fine-tuning must never mutate a
pre-trained — possibly fleet-shared — model), the onboarding pipeline, fleet
hot-swap with shard-isolated cache invalidation, registry lineage metadata,
the ``cdmpp onboard`` CLI, and regression tests for three bugs: target
featurization clamped to the source padding width, zero-row ``FeatureSet``
handling, and the profiler aliasing a caller-supplied RNG stream.
"""

import numpy as np
import pytest

from repro.adaptation import OnboardingPipeline
from repro.backends import CDMPPBackend, as_cost_model
from repro.cli import main
from repro.core.config import TrainingConfig
from repro.core.finetune import FineTuner, cross_device_adaptation, featurize_for_predictor
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.errors import ServingError, TrainingError
from repro.features.pipeline import featurize_records
from repro.profiler.profiler import Profiler
from repro.serving import FleetService, ModelRegistry


def _weights(trainer: Trainer):
    return {name: value.copy() for name, value in trainer.predictor.state_dict().items()}


def _same_weights(before, trainer: Trainer) -> bool:
    after = trainer.predictor.state_dict()
    return all(np.array_equal(before[name], after[name]) for name in before)


@pytest.fixture(scope="module")
def target_records(tiny_dataset):
    return tiny_dataset.records("k80")


# ---------------------------------------------------------------------------
# Clone + detached fine-tuning (the shared-checkpoint corruption fix)
# ---------------------------------------------------------------------------
class TestClone:
    def test_clone_is_detached_and_equivalent(self, trained_trainer, t4_features):
        _, _, test = t4_features
        twin = trained_trainer.clone()
        np.testing.assert_array_equal(twin.predict(test), trained_trainer.predict(test))

        before = _weights(trained_trainer)
        twin.predictor.parameters()[0].data += 1.0
        twin.transform._mean += 1.0
        twin._x_mean += 1.0
        assert _same_weights(before, trained_trainer)
        assert trained_trainer.transform._mean != twin.transform._mean

    def test_clone_requires_fitted_trainer(self):
        with pytest.raises(TrainingError):
            Trainer(config=TrainingConfig(epochs=1)).clone()

    def test_backend_clone_is_detached(self, trained_trainer):
        backend = CDMPPBackend(trainer=trained_trainer)
        twin = backend.clone()
        assert twin.trainer is not backend.trainer
        assert not backend.wraps(twin)
        assert twin.fitted

    def test_finetuner_never_mutates_pretrained_model(
        self, trained_trainer, t4_features, target_records
    ):
        train, _, _ = t4_features
        target = featurize_records(target_records[:60], max_leaves=trained_trainer.max_leaves)
        before = _weights(trained_trainer)
        finetuner = FineTuner(trained_trainer)
        finetuner.finetune(train.subset(range(64)), target, epochs=1)
        assert _same_weights(before, trained_trainer)
        assert finetuner.source_trainer is trained_trainer
        assert not _same_weights(before, finetuner.trainer)

    def test_finetuner_clone_false_keeps_legacy_in_place_behaviour(
        self, trained_trainer, t4_features, target_records
    ):
        train, _, _ = t4_features
        owned = trained_trainer.clone()
        target = featurize_records(target_records[:40], max_leaves=owned.max_leaves)
        finetuner = FineTuner(owned, clone=False)
        assert finetuner.trainer is owned
        before = _weights(owned)
        finetuner.finetune(train.subset(range(32)), target, epochs=1)
        assert not _same_weights(before, owned)


class TestFinetuneValidation:
    def test_validation_populates_best_epoch_and_restores(
        self, trained_trainer, t4_features, target_records
    ):
        train, _, _ = t4_features
        target = featurize_records(target_records[:80], max_leaves=trained_trainer.max_leaves)
        finetuner = FineTuner(trained_trainer)
        result = finetuner.finetune(
            train.subset(range(64)),
            target,
            target_labeled=target.subset(range(30)),
            valid=target.subset(range(30, 50)),
            epochs=2,
        )
        assert result.best_valid_mape < float("inf")
        assert -1 <= result.best_epoch < 2
        assert all("valid_mape" in entry for entry in result.history)

    def test_zero_shot_baseline_rolls_back_bad_finetunes(
        self, trained_trainer, t4_features, target_records
    ):
        """A fine-tune that never beats zero-shot on validation is undone."""
        train, _, _ = t4_features
        target = featurize_records(target_records[:60], max_leaves=trained_trainer.max_leaves)
        finetuner = FineTuner(trained_trainer)
        before = _weights(finetuner.trainer)
        result = finetuner.finetune(
            train.subset(range(64)),
            target,
            target_labeled=target.subset(range(20)),
            valid=target.subset(range(20, 40)),
            epochs=1,
            learning_rate=10.0,  # guaranteed to diverge
        )
        assert result.best_epoch == -1
        assert _same_weights(before, finetuner.trainer)


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------
class TestMaxLeavesRegression:
    def test_adaptation_pads_to_predictor_width(self, trained_trainer, tiny_dataset):
        """Target programs wider than every *source* program must still featurize.

        The old code padded target records to ``source_train.max_leaves``; a
        target program with more leaves then crashed featurization even
        though the predictor supports up to ``PredictorConfig.max_leaves``.
        """
        records = tiny_dataset.records("t4")
        widths = sorted({r.program.num_leaves for r in records})
        narrow = min(widths[0] + 1, trained_trainer.max_leaves - 1)
        source_records = [r for r in records if r.program.num_leaves <= narrow]
        target_records = tiny_dataset.records("k80")
        assert max(r.program.num_leaves for r in target_records) > max(
            r.program.num_leaves for r in source_records
        )

        source_train = featurize_records(source_records)
        assert source_train.max_leaves < trained_trainer.max_leaves
        target_test = featurize_records(
            target_records[:30], max_leaves=trained_trainer.max_leaves
        )
        result = cross_device_adaptation(
            trained_trainer,
            source_train=source_train,
            target_records=target_records,
            target_test=target_test,
            num_tasks=2,
            epochs=1,
            seed=0,
        )
        assert result.adapted_trainer is not None

    def test_clear_error_when_predictor_capacity_exceeded(self, tiny_dataset):
        records = tiny_dataset.records("t4")
        too_narrow = max(r.program.num_leaves for r in records) - 1
        with pytest.raises(TrainingError, match="max_leaves"):
            featurize_for_predictor(records, too_narrow)


class TestEmptyFeatureSetRegression:
    def test_predict_on_zero_rows_returns_empty(self, trained_trainer, t4_features):
        train, _, _ = t4_features
        empty = train.subset([])
        assert trained_trainer.predict(empty).shape == (0,)

    def test_latent_on_zero_rows_returns_empty(self, trained_trainer, t4_features):
        train, _, _ = t4_features
        latent = trained_trainer.latent(train.subset([]))
        assert latent.shape[0] == 0
        assert latent.shape[1] == trained_trainer.predictor.latent_dim

    def test_evaluate_on_zero_rows_raises_training_error(self, trained_trainer, t4_features):
        train, _, _ = t4_features
        with pytest.raises(TrainingError, match="empty"):
            trained_trainer.evaluate(train.subset([]))


class TestProfilerRngRegression:
    def test_generator_seed_is_not_aliased(self):
        rng = np.random.default_rng(3)
        profiler = Profiler("t4", seed=rng)
        assert profiler._rng is not rng

    def test_generator_seed_is_deterministic(self, dense_task):
        # Both generators are kept alive so the two Profilers cannot agree by
        # object-address reuse: equal generator *state* must be enough (the
        # simulator used to hash repr(generator), which embeds the address).
        rng_a, rng_b = np.random.default_rng(3), np.random.default_rng(3)
        profiler_a, profiler_b = Profiler("t4", seed=rng_a), Profiler("t4", seed=rng_b)
        records_a = profiler_a.profile_task(dense_task, num_schedules=3)
        records_b = profiler_b.profile_task(dense_task, num_schedules=3)
        assert [r.latency_s for r in records_a] == [r.latency_s for r in records_b]

    def test_profiling_does_not_consume_callers_stream_per_measurement(self, dense_task):
        """The caller's generator state must not depend on how much was profiled."""
        rng_short, rng_long = np.random.default_rng(5), np.random.default_rng(5)
        Profiler("t4", seed=rng_short).profile_task(dense_task, num_schedules=1)
        Profiler("t4", seed=rng_long).profile_task(dense_task, num_schedules=5)
        assert rng_short.integers(1 << 30) == rng_long.integers(1 << 30)


# ---------------------------------------------------------------------------
# The onboarding pipeline
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def onboarding_result(trained_trainer, t4_features, tiny_dataset):
    train, _, _ = t4_features
    pipeline = OnboardingPipeline(trained_trainer, train, parent_name="t4-tiny", seed=0)
    return pipeline.onboard(
        "k80", tiny_dataset.tasks(), num_tasks=4, schedules_per_task=3, epochs=1
    )


class TestOnboardingPipeline:
    def test_pipeline_produces_detached_adapted_model(
        self, trained_trainer, onboarding_result
    ):
        result = onboarding_result
        assert result.device == "k80"
        assert isinstance(result.model, CDMPPBackend)
        assert result.model.trainer is not trained_trainer
        assert 1 <= len(result.selected_tasks) <= 4
        assert 0 < result.profiled_records <= 4 * 3
        assert result.eval_split in ("holdout", "profiled")
        assert "mape" in result.zero_shot and "mape" in result.adapted
        assert result.cmd_before > 0 and result.cmd_after > 0

    def test_pipeline_never_mutates_parent(self, trained_trainer, t4_features, tiny_dataset):
        train, _, _ = t4_features
        before = _weights(trained_trainer)
        pipeline = OnboardingPipeline(trained_trainer, train, seed=1)
        pipeline.onboard("k80", tiny_dataset.tasks(), num_tasks=3, epochs=1)
        assert _same_weights(before, trained_trainer)

    def test_lineage_records_provenance(self, onboarding_result):
        lineage = onboarding_result.lineage
        assert lineage["parent"] == "t4-tiny"
        assert lineage["kappa"] == 4
        assert lineage["strategy"] == "kmeans"
        assert lineage["epochs"] == 1
        assert lineage["records_profiled"] == onboarding_result.profiled_records

    def test_budget_caps_measurements(self, trained_trainer, t4_features, tiny_dataset):
        train, _, _ = t4_features
        pipeline = OnboardingPipeline(trained_trainer, train, seed=0)
        result = pipeline.onboard(
            "k80",
            tiny_dataset.tasks(),
            num_tasks=4,
            schedules_per_task=3,
            max_measurements=5,
            epochs=1,
        )
        assert result.profiled_records <= 5
        assert result.profiling_budget == 5

    def test_refuses_non_cdmpp_backends(self, t4_features, t4_splits):
        from repro.baselines import XGBoostCostModel

        train, _, _ = t4_features
        xgb = XGBoostCostModel(n_estimators=4, seed=0)
        xgb.fit(t4_splits.train[:40])
        with pytest.raises(TrainingError, match="cdmpp"):
            OnboardingPipeline(as_cost_model(xgb), train)

    def test_refuses_unknown_strategy(self, trained_trainer, t4_features, tiny_dataset):
        train, _, _ = t4_features
        pipeline = OnboardingPipeline(trained_trainer, train, seed=0)
        with pytest.raises(TrainingError, match="strategy"):
            pipeline.onboard("k80", tiny_dataset.tasks(), strategy="grid", epochs=1)

    def test_registers_checkpoint_with_lineage(
        self, trained_trainer, t4_features, tiny_dataset, tmp_path
    ):
        train, _, _ = t4_features
        registry = ModelRegistry(tmp_path / "registry")
        pipeline = OnboardingPipeline(trained_trainer, train, parent_name="t4-tiny", seed=0)
        result = pipeline.onboard(
            "k80",
            tiny_dataset.tasks(),
            num_tasks=3,
            epochs=1,
            registry=registry,
            register_as="k80-adapted",
        )
        assert result.registered_as == "k80-adapted"
        assert registry.exists("k80-adapted")
        assert registry.backend_of("k80-adapted") == "cdmpp"
        assert registry.lineage_of("k80-adapted")["parent"] == "t4-tiny"
        loaded = registry.load("k80-adapted")
        assert isinstance(loaded, Trainer)


# ---------------------------------------------------------------------------
# Fleet integration: onboard without corrupting the shared checkpoint
# ---------------------------------------------------------------------------
class TestFleetOnboarding:
    def test_shared_checkpoint_survives_onboarding_bit_identical(
        self, trained_trainer, t4_features, tiny_dataset, tmp_path
    ):
        """The acceptance scenario: a two-device fleet serves one load_shared
        checkpoint; onboarding one device must leave the other device's
        model weights, predictions and cache shard bit-identical."""
        train, _, _ = t4_features
        registry = ModelRegistry(tmp_path / "registry")
        registry.save("shared", trained_trainer, device="t4", scale="tiny")
        fleet = FleetService.from_registry(registry, "shared", devices=["t4", "k80"])
        shared = registry.load_shared("shared")
        weights_before = _weights(shared)

        t4_before = fleet.predict_model("bert_tiny", "t4", seed=0)
        k80_before = fleet.predict_model("bert_tiny", "k80", seed=0)
        k80_shard = fleet.prediction_cache.shard("k80")
        k80_entries_before = {key: k80_shard.peek(key) for key in k80_shard}
        assert k80_entries_before

        pipeline = OnboardingPipeline(shared, train, parent_name="shared", seed=0)
        result = pipeline.onboard("t4", tiny_dataset.tasks(), num_tasks=3, epochs=1)
        fleet.onboard_device("t4", result)

        # The shared parent's in-memory weights are bit-identical.
        assert _same_weights(weights_before, shared)
        # Only the onboarded device's shard was invalidated.
        assert len(fleet.prediction_cache.shard("t4")) == 0
        k80_entries_after = {key: k80_shard.peek(key) for key in k80_shard}
        assert k80_entries_after == k80_entries_before
        # The other device still answers bit-identically.
        k80_after = fleet.predict_model("bert_tiny", "k80", seed=0)
        assert k80_after.predicted_latency_s == k80_before.predicted_latency_s
        assert k80_after.per_kernel_latency_s == k80_before.per_kernel_latency_s
        assert fleet.stats.devices_onboarded == 1
        # The onboarded device now answers from the adapted weights.
        t4_after = fleet.predict_model("bert_tiny", "t4", seed=0)
        assert t4_after.predicted_latency_s != t4_before.predicted_latency_s

    def test_onboard_device_accepts_result_and_plain_model(
        self, trained_trainer, onboarding_result
    ):
        fleet = FleetService({"t4": trained_trainer, "k80": trained_trainer})
        fleet.onboard_device("k80", onboarding_result)
        assert fleet.stats.devices_onboarded == 1
        fleet.onboard_device("k80", onboarding_result.model.trainer.clone())
        assert fleet.stats.devices_onboarded == 2

    def test_onboard_device_rejects_wrong_device_result(
        self, trained_trainer, onboarding_result
    ):
        fleet = FleetService({"t4": trained_trainer, "k80": trained_trainer})
        with pytest.raises(ServingError, match="not 't4'"):
            fleet.onboard_device("t4", onboarding_result)

    def test_onboard_device_refuses_in_place_finetuned_model(self, trained_trainer):
        """The corruption scenario itself: handing the fleet a model that
        still shares weights with a served one must be refused."""
        fleet = FleetService({"t4": trained_trainer, "k80": trained_trainer})
        in_place = FineTuner(trained_trainer, clone=False)
        with pytest.raises(ServingError, match="detached clone"):
            fleet.onboard_device("k80", in_place.trainer)

    def test_onboard_device_can_add_a_new_device(self, trained_trainer, onboarding_result):
        fleet = FleetService({"t4": trained_trainer})
        fleet.onboard_device("k80", onboarding_result)
        assert "k80" in fleet.devices


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestOnboardCLI:
    def test_onboard_requires_existing_parent(self, tmp_path, capsys):
        code = main(
            ["onboard", "k80", "--parent", "nope", "--registry", str(tmp_path / "reg")]
        )
        assert code == 2
        assert "no parent checkpoint" in capsys.readouterr().err

    def test_onboard_rejects_same_device(self, trained_trainer, tmp_path, capsys):
        registry = ModelRegistry(tmp_path / "reg")
        registry.save("t4-tiny", trained_trainer, device="t4", scale="tiny", seed=0)
        code = main(
            ["onboard", "t4", "--parent", "t4-tiny", "--registry", str(tmp_path / "reg")]
        )
        assert code == 2
        assert "already trained on t4" in capsys.readouterr().err

    def test_onboard_registers_adapted_checkpoint(self, trained_trainer, tmp_path, capsys):
        registry_dir = str(tmp_path / "reg")
        registry = ModelRegistry(registry_dir)
        registry.save("t4-tiny", trained_trainer, device="t4", scale="tiny", seed=0)
        code = main(
            [
                "onboard",
                "k80",
                "--parent",
                "t4-tiny",
                "--registry",
                registry_dir,
                "--num-tasks",
                "3",
                "--epochs",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "zero-shot" in out and "adapted" in out
        assert registry.exists("k80-tiny")
        lineage = registry.lineage_of("k80-tiny")
        assert lineage["parent"] == "t4-tiny"
        assert lineage["kappa"] == 3
        # The adapted entry carries the same bookkeeping as a trained one,
        # so a later onboard can chain off it (scale/seed are read back).
        extra = registry.describe("k80-tiny")["extra"]
        assert extra["device"] == "k80"
        assert extra["scale"] == "tiny"
        assert extra["seed"] == 0
        # The parent checkpoint on disk was not replaced.
        assert registry.lineage_of("t4-tiny") == {}

    def test_onboard_no_register(self, trained_trainer, tmp_path, capsys):
        registry_dir = str(tmp_path / "reg")
        registry = ModelRegistry(registry_dir)
        registry.save("t4-tiny", trained_trainer, device="t4", scale="tiny", seed=0)
        code = main(
            [
                "onboard",
                "k80",
                "--parent",
                "t4-tiny",
                "--registry",
                registry_dir,
                "--num-tasks",
                "2",
                "--epochs",
                "1",
                "--no-register",
            ]
        )
        assert code == 0
        assert not registry.exists("k80-tiny")
