"""Shared pytest fixtures.

Expensive artefacts (the synthetic dataset, a trained predictor) are built
once per session at the ``tiny`` scale so the full suite stays fast while the
integration-style tests still exercise the real training path.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.features.pipeline import featurize_records
from repro.ops import conv2d, dense
from repro.tir.lower import lower
from repro.tir.schedule import random_schedule


@pytest.fixture(scope="session")
def rng():
    """A deterministic NumPy generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def dense_task():
    """A small fused dense+ReLU task."""
    return dense(8, 64, 32, activation="relu", model="fixture")


@pytest.fixture(scope="session")
def conv_task():
    """A small fused conv2d task."""
    return conv2d(1, 8, 16, 14, 14, kernel=3, stride=1, padding=1, model="fixture")


@pytest.fixture(scope="session")
def dense_program(dense_task):
    """A lowered program of the dense task with a random GPU-style schedule."""
    return lower(dense_task, random_schedule(dense_task, np.random.default_rng(7), "gpu"))


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny two-GPU + one-CPU dataset shared across tests."""
    config = DatasetConfig(
        devices=("t4", "k80", "epyc-7452"),
        zoo_models=("bert_tiny",),
        num_synthetic_models=4,
        schedules_per_task=6,
        seed=0,
    )
    return generate_dataset(config)


@pytest.fixture(scope="session")
def t4_splits(tiny_dataset):
    """Train/valid/test splits of the T4 records."""
    return split_dataset(tiny_dataset.records("t4"), seed=0)


@pytest.fixture(scope="session")
def t4_features(t4_splits):
    """Featurized T4 splits (train, valid, test) with a shared padding width."""
    train = featurize_records(t4_splits.train)
    valid = featurize_records(t4_splits.valid, max_leaves=train.max_leaves)
    test = featurize_records(t4_splits.test, max_leaves=train.max_leaves)
    return train, valid, test


def trainer_fingerprint(trainer: Trainer) -> int:
    """A cheap digest of a trainer's weights, to detect in-place mutation.

    Session-scoped trainers are shared by many tests; any test that trains
    or fine-tunes one *in place* silently changes what every later test
    sees (and makes outcomes depend on execution order).  Tests that need a
    trained model they may modify must use ``trainer.clone()``.
    """
    digest = 0
    for name, value in sorted(trainer.predictor.state_dict().items()):
        digest ^= hash((name, value.tobytes()))
    return digest


@pytest.fixture(scope="session")
def trained_trainer(t4_features):
    """A predictor trained for a handful of epochs on the tiny T4 dataset.

    Shared and read-only: an autouse guard fails the session if any test
    mutates it in place (fine-tune a ``trainer.clone()`` instead).
    """
    train, valid, _ = t4_features
    scale = get_scale("tiny")
    trainer = Trainer(
        predictor_config=scale.predictor_config(),
        config=scale.training_config(epochs=30, seed=0),
    )
    trainer.fit(train, valid)
    return trainer


@pytest.fixture(autouse=True)
def _session_trainer_is_immutable(request):
    """Fail any test that mutates the shared ``trained_trainer`` in place."""
    if "trained_trainer" not in request.fixturenames:
        yield
        return
    trainer = request.getfixturevalue("trained_trainer")
    before = trainer_fingerprint(trainer)
    yield
    assert trainer_fingerprint(trainer) == before, (
        f"{request.node.nodeid} mutated the session-scoped trained_trainer "
        "in place; later tests would silently see different weights "
        "depending on execution order. Fine-tune trainer.clone() instead."
    )
