"""Tests for the two-tier serving path: accurate teacher vs. distilled student.

The "fast" tier answers from a distilled MLP student of the CDMPP teacher
(:class:`repro.backends.DistilledBackend`); the "accurate" tier answers from
the teacher itself.  These tests cover tier validation, per-tier caching and
counters at every serving layer (service, fleet, daemon), the hard fast-miss
errors, and the distilled backend's persistence/lineage contract.
"""

import numpy as np
import pytest

from repro.backends import DistilledBackend, backend_of_checkpoint
from repro.errors import ServingError, TrainingError
from repro.ops import dense
from repro.serving import (
    DEFAULT_TIER,
    TIERS,
    DaemonClient,
    DaemonConfig,
    DaemonRequestError,
    FleetService,
    ModelRegistry,
    PredictionService,
    ServingDaemon,
    validate_tier,
)
from repro.tir.lower import lower
from repro.tir.schedule import random_schedule


@pytest.fixture(scope="module")
def fast_student(trained_trainer, t4_features):
    """A distilled student of the shared tiny T4 teacher (read-only)."""
    train, _, _ = t4_features
    return DistilledBackend.distill_from(trained_trainer, train, distill_epochs=30, seed=0)


@pytest.fixture(scope="module")
def gpu_programs(dense_task):
    return [
        lower(dense_task, random_schedule(dense_task, np.random.default_rng(i), "gpu"))
        for i in range(3)
    ]


class TestValidateTier:
    def test_tiers_constant(self):
        assert TIERS == ("fast", "accurate")
        assert DEFAULT_TIER == "accurate"

    def test_normalises_case_and_whitespace(self):
        assert validate_tier(" Fast ") == "fast"
        assert validate_tier("ACCURATE") == "accurate"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ServingError, match="unknown tier"):
            validate_tier("warp")


class TestPredictionServiceTiers:
    def test_fast_tier_unservable_without_student(self, trained_trainer, gpu_programs):
        service = PredictionService(trained_trainer)
        with pytest.raises(ServingError, match="no fast-tier model"):
            service.predict_program(gpu_programs[0], "t4", tier="fast")

    def test_tiers_cache_separately(self, trained_trainer, fast_student, gpu_programs):
        service = PredictionService(trained_trainer)
        accurate = service.predict(gpu_programs, "t4").tolist()
        service.register_fast_model("t4", fast_student)
        fast = service.predict(gpu_programs, "t4", tier="fast").tolist()
        # Accurate answers are unchanged by the fast registration (no cache
        # aliasing between tiers), and the student genuinely differs.
        assert service.predict(gpu_programs, "t4").tolist() == accurate
        assert all(a != f for a, f in zip(accurate, fast))
        # Cached fast answers stay fast-tier.
        assert service.predict_program(gpu_programs[0], "t4", tier="fast") == fast[0]

    def test_per_tier_counters(self, trained_trainer, fast_student, gpu_programs):
        service = PredictionService(trained_trainer, fast_models={"t4": fast_student})
        service.predict(gpu_programs, "t4")
        service.predict(gpu_programs, "t4", tier="fast")
        stats = service.describe_stats()
        assert stats["accurate_tier_queries"] == 3
        assert stats["fast_tier_queries"] == 3
        assert stats["fast_devices"] == ["t4"]


class TestFleetTiers:
    def test_fleet_tier_split(self, trained_trainer, fast_student):
        fleet = FleetService({"t4": trained_trainer}, fast_models={"t4": fast_student})
        accurate = fleet.predict_model("bert_tiny", "t4", batch_size=1)
        fast = fleet.predict_model("bert_tiny", "t4", batch_size=1, tier="fast")
        assert accurate.predicted_latency_s != fast.predicted_latency_s
        stats = fleet.describe_stats()
        assert stats["fast_tier_model_queries"] == 1
        assert stats["accurate_tier_model_queries"] == 1

    def test_fleet_fast_miss_and_late_registration(self, trained_trainer, fast_student):
        fleet = FleetService({"t4": trained_trainer})
        with pytest.raises(ServingError, match="no fast-tier model"):
            fleet.predict_model("bert_tiny", "t4", tier="fast")
        fleet.register_fast_model("t4", fast_student)
        result = fleet.predict_model("bert_tiny", "t4", batch_size=1, tier="fast")
        reference = FleetService(
            {"t4": trained_trainer}, fast_models={"t4": fast_student}
        ).predict_model("bert_tiny", "t4", batch_size=1, tier="fast")
        assert result.predicted_latency_s == reference.predicted_latency_s


class TestDistilledBackend:
    def test_cache_signature_carries_teacher_lineage(self, fast_student):
        tag, fingerprint, max_leaves = fast_student.cache_signature
        assert tag == "distilled"
        assert fingerprint not in ("", "unknown")
        assert max_leaves == fast_student.max_leaves

    def test_unfitted_backend_refuses_queries(self, gpu_programs):
        backend = DistilledBackend()
        assert backend.cache_signature == ("distilled", "unfitted")
        with pytest.raises(TrainingError, match="before fit"):
            backend.predict_programs(gpu_programs, "t4")

    def test_save_load_roundtrip_bit_identical(self, fast_student, gpu_programs, tmp_path):
        before = fast_student.predict_programs(gpu_programs, "t4")
        path = fast_student.save(tmp_path / "student.npz")
        loaded = DistilledBackend.load(path)
        assert np.array_equal(loaded.predict_programs(gpu_programs, "t4"), before)
        assert loaded.cache_signature == fast_student.cache_signature

    def test_registry_roundtrip_keeps_distilled_tag(self, fast_student, gpu_programs, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("t4-tiny-distilled", fast_student, device="t4", scale="tiny")
        assert backend_of_checkpoint(registry.path_for("t4-tiny-distilled")) == "distilled"
        loaded = registry.load("t4-tiny-distilled")
        assert isinstance(loaded, DistilledBackend)
        assert np.array_equal(
            loaded.predict_programs(gpu_programs, "t4"),
            fast_student.predict_programs(gpu_programs, "t4"),
        )

    def test_clone_is_detached(self, fast_student, gpu_programs):
        twin = fast_student.clone()
        before = fast_student.predict_programs(gpu_programs, "t4")
        twin.model.rep_mean = twin.model.rep_mean + 1.0
        assert np.array_equal(fast_student.predict_programs(gpu_programs, "t4"), before)

    def test_student_tracks_teacher_accuracy(self, trained_trainer, fast_student, t4_features):
        _, _, test = t4_features
        teacher_mape = trained_trainer.evaluate(test)["mape"]
        student_mape = fast_student.evaluate_features(test)["mape"]
        # Acceptance bound from the tiered-serving issue: the student may lose
        # at most 10 MAPE points to its teacher on held-out data.
        assert student_mape <= teacher_mape + 10.0


class TestDaemonTiers:
    def test_rejects_fast_model_for_unserved_device(self, trained_trainer, fast_student):
        with pytest.raises(ServingError, match="does not serve"):
            ServingDaemon(
                {"t4": trained_trainer}, DaemonConfig(port=0), fast_models={"k80": fast_student}
            )

    def test_tiered_round_trips(self, trained_trainer, fast_student):
        config = DaemonConfig(port=0, max_wait_ms=5.0)
        with ServingDaemon(
            {"t4": trained_trainer}, config, fast_models={"t4": fast_student}
        ) as daemon:
            host, port = daemon.address
            with DaemonClient(host, port) as client:
                assert client.health()["fast_devices"] == ["t4"]

                accurate = client.query("bert_tiny", device="t4", seed=0)
                fast = client.query("bert_tiny", device="t4", seed=0, tier="fast")
                assert accurate["tier"] == "accurate"
                assert fast["tier"] == "fast"
                assert accurate["latency_s"] != fast["latency_s"]

                # Explicit accurate answers exactly like the default tier.
                explicit = client.query("bert_tiny", device="t4", seed=0, tier="accurate")
                assert explicit["latency_s"] == accurate["latency_s"]

                ranked = client.predict_model_raw("bert_tiny", tier="fast")
                assert ranked["tier"] == "fast"
                assert ranked["results"][0]["latency_s"] == fast["latency_s"]

                with pytest.raises(DaemonRequestError) as excinfo:
                    client.query("bert_tiny", device="t4", tier="warp")
                assert excinfo.value.code == "bad_request"

                # Tune must not search against the student's approximation.
                with pytest.raises(DaemonRequestError) as excinfo:
                    client._call(
                        {
                            "op": "tune",
                            "network": "bert_tiny",
                            "tier": "fast",
                            "rounds": 1,
                            "population": 2,
                            "measurements_per_round": 1,
                        }
                    )
                assert excinfo.value.code == "bad_request"

                counters = client.stats()["daemon"]
                assert counters["fast_tier_requests"] == 2
                assert counters["accurate_tier_requests"] >= 2

    def test_fast_tier_without_student_is_bad_request(self, trained_trainer):
        with ServingDaemon({"t4": trained_trainer}, DaemonConfig(port=0, max_wait_ms=5.0)) as daemon:
            host, port = daemon.address
            with DaemonClient(host, port) as client:
                assert client.health()["fast_devices"] == []
                with pytest.raises(DaemonRequestError) as excinfo:
                    client.query("bert_tiny", device="t4", tier="fast")
                assert excinfo.value.code == "bad_request"
