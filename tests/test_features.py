"""Tests for Compact-AST extraction, positional encoding and featurization."""

import numpy as np
import pytest

from repro.errors import FeatureError
from repro.features.compact_ast import COMPUTATION_VECTOR_LENGTH, extract_compact_ast
from repro.features.device_features import DEVICE_FEATURE_DIM, device_feature_vector
from repro.features.pipeline import FeatureSet, featurize_programs, featurize_records
from repro.features.positional import add_positional_encoding, positional_encoding
from repro.ops import conv2d, dense, embedding_lookup
from repro.tir.lower import lower
from repro.tir.schedule import Schedule, random_schedule


class TestCompactAST:
    def test_shapes_and_leaf_count(self, dense_program):
        compact = extract_compact_ast(dense_program)
        assert compact.computation_vectors.shape == (dense_program.num_leaves, COMPUTATION_VECTOR_LENGTH)
        assert compact.ordering_vector.shape == (dense_program.num_leaves,)
        assert compact.num_leaves == dense_program.num_leaves
        assert compact.num_ast_nodes >= compact.num_leaves

    def test_ordering_vector_is_increasing(self, dense_program):
        compact = extract_compact_ast(dense_program)
        assert np.all(np.diff(compact.ordering_vector) > 0)

    def test_vectors_are_finite(self, dense_program):
        compact = extract_compact_ast(dense_program)
        assert np.all(np.isfinite(compact.computation_vectors))

    def test_schedule_changes_features(self, dense_task):
        plain = extract_compact_ast(lower(dense_task))
        annotated = extract_compact_ast(
            lower(dense_task, Schedule().annotate("b", "parallel").annotate("o", "vectorize"))
        )
        assert not np.allclose(plain.computation_vectors, annotated.computation_vectors)

    def test_gather_pattern_feature_set_for_embedding(self):
        program = lower(embedding_lookup(16, 1000, 32, model="m"))
        compact = extract_compact_ast(program)
        # The last block of features encodes access-pattern counts; at least
        # one leaf must report a gather read.
        gather_column = compact.computation_vectors[:, -2]
        assert gather_column.max() >= 1.0

    def test_compact_ast_validation(self):
        with pytest.raises(FeatureError):
            from repro.features.compact_ast import CompactAST

            CompactAST(np.zeros((2, 3)), np.zeros(2), 5)


class TestPositionalEncoding:
    def test_shape_and_range(self):
        encoding = positional_encoding(np.arange(5), dim=COMPUTATION_VECTOR_LENGTH)
        assert encoding.shape == (5, COMPUTATION_VECTOR_LENGTH)
        assert np.all(np.abs(encoding) <= 1.0 + 1e-12)

    def test_distinct_positions_get_distinct_encodings(self):
        encoding = positional_encoding(np.array([1, 2, 7, 13]), dim=16)
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(encoding[i], encoding[j])

    def test_same_position_same_encoding(self):
        encoding = positional_encoding(np.array([3, 3]), dim=16)
        assert np.allclose(encoding[0], encoding[1])

    def test_invalid_dim_raises(self):
        with pytest.raises(FeatureError):
            positional_encoding(np.arange(3), dim=0)

    def test_add_positional_encoding_changes_vectors(self, dense_program):
        compact = extract_compact_ast(dense_program)
        with_pe = add_positional_encoding(compact.computation_vectors, compact.ordering_vector)
        assert with_pe.shape == compact.computation_vectors.shape
        assert not np.allclose(with_pe, compact.computation_vectors)


class TestDeviceFeatures:
    def test_shape_matches_constant(self):
        assert device_feature_vector("t4").shape == (DEVICE_FEATURE_DIM,)

    def test_accepts_spec_or_name(self):
        from repro.devices.spec import get_device

        assert np.array_equal(device_feature_vector("a100"), device_feature_vector(get_device("a100")))


class TestFeaturizePipeline:
    def test_featurize_records_shapes(self, t4_splits):
        features = featurize_records(t4_splits.train[:20])
        assert len(features) == 20
        assert features.x.shape == (20, features.max_leaves, COMPUTATION_VECTOR_LENGTH)
        assert features.mask.shape == (20, features.max_leaves)
        assert features.device_features.shape == (20, DEVICE_FEATURE_DIM)
        assert np.all(features.y > 0)
        assert np.all(features.mask.sum(axis=1) == features.leaf_counts)

    def test_padding_is_zero(self, t4_splits):
        features = featurize_records(t4_splits.train[:20])
        padded = features.x * (1.0 - features.mask[:, :, None])
        assert np.allclose(padded, 0.0)

    def test_max_leaves_override_and_error(self, t4_splits):
        features = featurize_records(t4_splits.train[:5], max_leaves=32)
        assert features.max_leaves == 32
        with pytest.raises(FeatureError):
            featurize_records(t4_splits.train[:5], max_leaves=1)

    def test_positional_encoding_toggle_changes_x(self, t4_splits):
        with_pe = featurize_records(t4_splits.train[:10], use_positional_encoding=True)
        without_pe = featurize_records(t4_splits.train[:10], use_positional_encoding=False)
        assert not np.allclose(with_pe.x, without_pe.x)

    def test_featurize_programs_without_labels(self, dense_program):
        features = featurize_programs([dense_program], "v100")
        assert len(features) == 1
        assert features.y[0] == 0.0
        assert features.devices == ["v100"]

    def test_subset_and_groupers(self, t4_splits):
        features = featurize_records(t4_splits.train[:30])
        subset = features.subset([0, 2, 4])
        assert len(subset) == 3
        assert subset.task_keys[1] == features.task_keys[2]
        by_task = features.by_task()
        assert sum(len(v) for v in by_task.values()) == len(features)
        by_model = features.by_model()
        assert sum(len(v) for v in by_model.values()) == len(features)

    def test_concatenate_repads(self, t4_splits):
        a = featurize_records(t4_splits.train[:10], max_leaves=6)
        b = featurize_records(t4_splits.train[10:20], max_leaves=9)
        merged = FeatureSet.concatenate([a, b])
        assert len(merged) == 20
        assert merged.max_leaves == 9

    def test_empty_input_raises(self):
        with pytest.raises(FeatureError):
            featurize_records([])
