"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cmd import cmd_distance
from repro.core.kmeans import KMeans
from repro.core.metrics import mape, threshold_accuracy
from repro.core.transforms import BoxCoxTransform, QuantileTransform
from repro.devices.spec import get_device, list_devices
from repro.devices.simulator import DeviceSimulator
from repro.features.compact_ast import COMPUTATION_VECTOR_LENGTH, extract_compact_ast
from repro.features.positional import positional_encoding
from repro.nn.tensor import Tensor
from repro.ops import conv2d, dense
from repro.tir.ast import LEAF_MARKER, build_ast, preorder_serialize
from repro.tir.lower import lower
from repro.tir.schedule import random_schedule
from repro.utils.rng import stable_hash

# Shared strategy: small dense tasks with valid shapes.
dense_shapes = st.tuples(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=2, max_value=128),
    st.integers(min_value=2, max_value=128),
)


@settings(max_examples=20, deadline=None)
@given(shape=dense_shapes, seed=st.integers(min_value=0, max_value=1_000))
def test_lowered_program_invariants(shape, seed):
    """Any random schedule of any dense task lowers to a consistent program."""
    batch, in_features, out_features = shape
    task = dense(batch, in_features, out_features, model="prop")
    schedule = random_schedule(task, np.random.default_rng(seed), "gpu")
    program = lower(task, schedule)

    stats = program.stats
    assert stats.total_flops > 0
    assert stats.total_bytes_read > 0
    assert stats.num_leaves == program.num_leaves >= 1
    assert stats.max_loop_depth >= 1
    # FLOPs can only grow (ceil-division padding) relative to the unscheduled task.
    assert stats.total_flops >= task.naive_flops() * 0.99
    # The AST and the program agree about leaves, and the serialization
    # contains exactly one marker per leaf.
    root = build_ast(program)
    sequence, leaf_positions = preorder_serialize(root)
    assert root.num_leaves() == program.num_leaves
    assert sequence.count(LEAF_MARKER) == program.num_leaves
    assert leaf_positions == sorted(leaf_positions)


@settings(max_examples=20, deadline=None)
@given(shape=dense_shapes, seed=st.integers(min_value=0, max_value=1_000))
def test_compact_ast_feature_invariants(shape, seed):
    """Compact-AST features are finite, fixed-width and leaf-aligned."""
    batch, in_features, out_features = shape
    task = dense(batch, in_features, out_features, model="prop")
    program = lower(task, random_schedule(task, np.random.default_rng(seed), "cpu"))
    compact = extract_compact_ast(program)
    assert compact.computation_vectors.shape == (program.num_leaves, COMPUTATION_VECTOR_LENGTH)
    assert np.all(np.isfinite(compact.computation_vectors))
    assert np.all(compact.ordering_vector >= 0)
    assert len(np.unique(compact.ordering_vector)) == program.num_leaves


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000),
       device_index=st.integers(min_value=0, max_value=8))
def test_simulator_latency_invariants(seed, device_index):
    """Simulated latencies are positive, finite, and deterministic per seed."""
    devices = list_devices()
    device = devices[device_index % len(devices)]
    task = conv2d(1, 8, 16, 14, 14, model="prop")
    program = lower(task, random_schedule(task, np.random.default_rng(seed), device.taxonomy))
    first = DeviceSimulator(device, seed=seed).measure(program)
    second = DeviceSimulator(device, seed=seed).measure(program)
    assert first == second
    assert np.isfinite(first)
    assert first > device.launch_overhead_us * 1e-6 * 0.5


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(st.floats(min_value=1e-7, max_value=1e-1, allow_nan=False), min_size=16, max_size=200),
)
def test_box_cox_roundtrip_property(values):
    """Box-Cox transform round-trips arbitrary positive latency arrays."""
    array = np.asarray(values)
    transform = BoxCoxTransform().fit(array)
    recovered = transform.inverse_transform(transform.transform(array))
    np.testing.assert_allclose(recovered, array, rtol=1e-3, atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    positions=st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=20, unique=True),
    dim=st.integers(min_value=2, max_value=64),
)
def test_positional_encoding_bounded_and_unique(positions, dim):
    """PE values stay in [-1, 1] and distinct positions get distinct encodings."""
    encoding = positional_encoding(np.asarray(positions, dtype=float), dim=dim)
    assert np.all(np.abs(encoding) <= 1.0 + 1e-9)
    if len(positions) > 1 and dim >= 4:
        assert not np.allclose(encoding[0], encoding[1])


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=60),
    k=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=100),
)
def test_kmeans_partition_properties(n, k, seed):
    """KMeans labels form a partition and inertia is non-negative."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 3))
    kmeans = KMeans(k, seed=seed)
    result = kmeans.fit(x)
    assert result.labels.shape == (n,)
    assert result.labels.min() >= 0
    assert result.labels.max() < kmeans.num_clusters
    assert result.inertia >= 0
    # Every cluster center is finite.
    assert np.all(np.isfinite(result.centers))


@settings(max_examples=20, deadline=None)
@given(
    data=st.lists(st.floats(min_value=-10, max_value=10, allow_nan=False), min_size=10, max_size=80),
    shift=st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
)
def test_cmd_is_nonnegative_and_grows_with_shift(data, shift):
    """CMD is non-negative and zero only for identical samples."""
    source = np.asarray(data).reshape(-1, 1)
    target = source + shift
    distance = cmd_distance(source, target)
    assert distance >= 0
    if shift > 0.5:
        assert distance > 0


@settings(max_examples=20, deadline=None)
@given(
    target=st.lists(st.floats(min_value=1e-3, max_value=1e3, allow_nan=False), min_size=2, max_size=50),
    scale=st.floats(min_value=0.5, max_value=2.0, allow_nan=False),
)
def test_mape_scale_invariance(target, scale):
    """MAPE is invariant when predictions and targets are scaled together."""
    target_array = np.asarray(target)
    pred = target_array * 1.1
    assert mape(pred * scale, target_array * scale) == pytest.approx(mape(pred, target_array), rel=1e-9)
    assert 0.0 <= threshold_accuracy(pred, target_array, 0.2) <= 1.0


@settings(max_examples=30, deadline=None)
@given(parts=st.lists(st.text(min_size=0, max_size=12), min_size=1, max_size=4))
def test_stable_hash_is_stable(parts):
    """stable_hash is deterministic and bounded for arbitrary printable input."""
    assert stable_hash(*parts) == stable_hash(*parts)
    assert 0 <= stable_hash(*parts) < 2**63


# ----------------------------------------------------------------------
# Schedule-search invariants (the SearchService contract)
# ----------------------------------------------------------------------
def _flops_score(programs):
    """A deterministic, stateless scorer: prefer fewer padded FLOPs."""
    return np.array([float(program.stats.total_flops) for program in programs])


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=1_000),
    num_rounds=st.integers(min_value=1, max_value=4),
    population=st.integers(min_value=1, max_value=6),
    measurements=st.integers(min_value=1, max_value=4),
)
def test_search_best_latency_is_monotone_and_budgeted(seed, num_rounds, population, measurements):
    """Per-round best latency never worsens and measurements respect the budget."""
    from repro.search.ansor import evolutionary_search

    task = dense(4, 16, 16, model="prop-search")
    result = evolutionary_search(
        task,
        "t4",
        _flops_score,
        num_rounds=num_rounds,
        population=population,
        measurements_per_round=measurements,
        seed=seed,
    )
    history = result.best_latency_per_round
    assert len(history) == num_rounds
    assert all(later <= earlier for earlier, later in zip(history, history[1:]))
    assert result.best_latency_s == history[-1] > 0
    assert result.num_measurements <= num_rounds * max(measurements, 1)
    assert result.num_scored == num_rounds * population
    assert result.scoring_batches == num_rounds
    assert result.best_schedule is not None


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1_000))
def test_perfect_oracle_never_loses_to_random_scorer(seed):
    """A ScoreFn returning the true simulated latency finds a schedule at
    least as fast as a random scorer under the identical search budget.

    Both searches share one seed, so they sample identical candidate pools;
    the oracle's measured top-k always contains the pool's true best, while
    the random scorer measures an arbitrary subset.
    """
    from repro.search.ansor import evolutionary_search

    task = dense(4, 16, 16, model="prop-search")
    device = get_device("t4")
    budget = dict(num_rounds=2, population=6, measurements_per_round=2, seed=seed)

    oracle_sim = DeviceSimulator(device, seed=seed)  # same stream as the search's

    def oracle(programs):
        return np.array([oracle_sim.measure(program) for program in programs])

    score_rng = np.random.default_rng(seed + 1)

    def random_scorer(programs):
        return score_rng.random(len(programs))

    best_oracle = evolutionary_search(task, device, oracle, **budget).best_latency_s
    best_random = evolutionary_search(task, device, random_scorer, **budget).best_latency_s
    assert best_oracle <= best_random * (1 + 1e-12)
