"""CLI tests and cross-module integration tests."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core.api import CDMPP
from repro.core.finetune import FineTuner
from repro.core.metrics import mape
from repro.core.scale import get_scale
from repro.core.trainer import Trainer
from repro.dataset.splits import split_dataset
from repro.features.pipeline import featurize_records
from repro.replay.e2e import measure_end_to_end


@pytest.fixture(scope="module")
def isolated_trainer(t4_features):
    """A trainer owned by this module alone, immune to test-order effects.

    Identical recipe to the session-scoped ``trained_trainer`` but never
    shared, so assertions about its prediction quality cannot silently
    depend on what earlier tests did to a shared fixture.
    """
    train, valid, _ = t4_features
    scale = get_scale("tiny")
    trainer = Trainer(
        predictor_config=scale.predictor_config(),
        config=scale.training_config(epochs=30, seed=0),
    )
    trainer.fit(train, valid)
    return trainer


class TestCLI:
    def test_parser_accepts_positional_arguments(self):
        args = build_parser().parse_args(["bert_tiny", "1", "t4", "--scale", "tiny"])
        assert args.network == "bert_tiny"
        assert args.batch_size == 1
        assert args.device == "t4"

    def test_unknown_network_returns_error_code(self, capsys):
        assert main(["alexnet", "1", "t4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_device_returns_error_code(self):
        assert main(["bert_tiny", "1", "tpu-v4"]) == 2

    def test_full_query_runs_at_tiny_scale(self, capsys):
        exit_code = main(["bert_tiny", "1", "t4", "--scale", "tiny", "--seed", "0"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "predicted latency" in output
        assert "relative error" in output


class TestCLISubcommands:
    def test_query_trains_once_then_loads_checkpoint(self, capsys, tmp_path):
        registry = str(tmp_path / "registry")
        argv = ["query", "bert_tiny", "1", "t4", "--scale", "tiny", "--registry", registry]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert "training a tiny-scale cost model" in first
        assert "registered 't4-tiny'" in first

        assert main(argv) == 0
        second = capsys.readouterr().out
        assert "loading pre-trained model 't4-tiny'" in second
        assert "training a tiny-scale cost model" not in second
        assert "predicted latency" in second

    def test_train_then_query_and_serve_share_the_checkpoint(self, capsys, tmp_path, monkeypatch):
        import io

        registry = str(tmp_path / "registry")
        assert main(["train", "t4", "--scale", "tiny", "--registry", registry]) == 0
        assert "registered 't4-tiny'" in capsys.readouterr().out

        assert main(
            ["query", "bert_tiny", "1", "t4", "--scale", "tiny", "--registry", registry]
        ) == 0
        assert "loading pre-trained model" in capsys.readouterr().out

        monkeypatch.setattr("sys.stdin", io.StringIO("bert_tiny 1\nbert_tiny 1\n"))
        assert main(["serve", "t4", "--scale", "tiny", "--registry", registry]) == 0
        served = capsys.readouterr().out
        assert "loading pre-trained model" in served
        assert "served 2 queries" in served
        assert "cache hit rate" in served

    def test_list_subcommand(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "networks:" in output and "bert_tiny" in output
        assert "devices:" in output and "t4" in output
        assert "scales:" in output and "tiny" in output

    def test_query_prefix_resolves_unique_model_name(self):
        from repro.errors import ModelError
        from repro.graph.zoo import resolve_model_name

        assert resolve_model_name("resnet") == "resnet50"
        assert resolve_model_name("vgg") == "vgg16"
        with pytest.raises(ModelError):
            resolve_model_name("bert")  # ambiguous: bert_tiny / bert_base
        with pytest.raises(ModelError):
            resolve_model_name("alexnet")

    def test_query_unknown_network_returns_error_code(self, capsys, tmp_path):
        code = main(["query", "alexnet", "1", "t4", "--registry", str(tmp_path)])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestEndToEndIntegration:
    def test_pretrain_finetune_predict_pipeline(self, tiny_dataset):
        """The full CDPP pipeline: pre-train on T4+K80, adapt to the CPU."""
        scale = get_scale("tiny")
        source_records = tiny_dataset.records("t4") + tiny_dataset.records("k80")
        source_splits = split_dataset(source_records, seed=0)
        target_splits = split_dataset(tiny_dataset.records("epyc-7452"), seed=0)

        cdmpp = CDMPP(predictor_config=scale.predictor_config(),
                      training_config=scale.training_config(epochs=6, seed=0))
        cdmpp.pretrain(source_splits.train, source_splits.valid)

        source_train = featurize_records(source_splits.train,
                                         max_leaves=cdmpp.predictor_config.max_leaves)
        target_test = featurize_records(target_splits.test,
                                        max_leaves=cdmpp.predictor_config.max_leaves)
        result = cdmpp.finetune_to_device(
            source_train=source_train,
            target_records=target_splits.train,
            target_test=target_test,
            num_tasks=4,
            epochs=1,
        )
        assert result.metrics_after["mape"] < result.metrics_before["mape"] * 3
        assert len(result.selected_tasks) >= 1

    def test_e2e_prediction_tracks_ground_truth(self, trained_trainer):
        """Whole-model prediction lands within a factor of the simulator truth."""
        cdmpp = CDMPP.from_trainer(trained_trainer)  # reuse the session-trained trainer

        prediction = cdmpp.predict_model("bert_tiny", "t4", seed=0)
        truth = measure_end_to_end("bert_tiny", "t4", seed=0)
        ratio = prediction.predicted_latency_s / truth.iteration_time_s
        assert 0.2 < ratio < 5.0

    def test_latent_space_reacts_to_cmd_finetuning(self, trained_trainer, tiny_dataset, t4_features):
        """Fine-tuning with the CMD term reduces the source/target latent CMD."""
        train, _, _ = t4_features
        target = featurize_records(tiny_dataset.records("epyc-7452")[:80],
                                   max_leaves=train.max_leaves)
        finetuner = FineTuner(trained_trainer)
        before = finetuner.latent_cmd(train, target)
        finetuner.finetune(train.subset(range(64)), target, epochs=2, alpha=2.0)
        after = finetuner.latent_cmd(train, target)
        assert after < before * 1.5  # must not blow the domains apart

    def test_prediction_errors_correlate_with_latency_scale(self, isolated_trainer, t4_features):
        """Sanity: predictions track the order of magnitude of the labels.

        Uses its own freshly trained fixture, NOT the shared session
        trainer: the historical 0.45 threshold silently depended on a
        preceding test fine-tuning the shared fixture in place, so the
        assertion changed meaning with execution order.  A standalone
        trainer's genuine zero-shot correlation is ~0.33 (saturated —
        more epochs do not move it), hence the 0.30 floor.
        """
        _, _, test = t4_features
        predictions = isolated_trainer.predict(test)
        correlation = np.corrcoef(np.log(predictions), np.log(test.y))[0, 1]
        assert correlation > 0.30

    def test_cross_device_ranking_preserved_for_large_models(self, trained_trainer):
        """A faster device should get a faster end-to-end prediction."""
        truth_k80 = measure_end_to_end("vgg16", "k80", seed=0).iteration_time_s
        truth_a100 = measure_end_to_end("vgg16", "a100", seed=0).iteration_time_s
        assert truth_a100 < truth_k80
