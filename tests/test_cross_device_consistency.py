"""Consistency checks of the simulated device fleet (no training involved).

These tests pin down the cross-device behaviour the learned models are asked
to capture: faster devices are faster on heavy kernels, taxonomy matters for
particular operator families, and every device produces sane latencies for
every operator family in the library.
"""

import numpy as np
import pytest

from repro.devices.simulator import DeviceSimulator
from repro.devices.spec import get_device, list_devices
from repro.ops import OP_BUILDERS, build_op
from repro.tir.lower import lower
from repro.tir.schedule import random_schedule
from tests.test_ops import SAMPLE_KWARGS


@pytest.fixture(scope="module")
def heavy_conv_program():
    task = build_op("conv2d", batch=1, in_channels=64, out_channels=128, height=28, width=28,
                    model="consistency")
    return lower(task, random_schedule(task, np.random.default_rng(0), "gpu"))


class TestDeviceOrdering:
    def test_gpu_generation_ordering_on_heavy_conv(self, heavy_conv_program):
        latencies = {
            name: DeviceSimulator(get_device(name), seed=0).measure(heavy_conv_program)
            for name in ("k80", "t4", "v100", "a100")
        }
        assert latencies["a100"] < latencies["v100"] < latencies["k80"]
        assert latencies["t4"] < latencies["k80"]

    def test_every_device_slower_than_a100_on_heavy_conv(self, heavy_conv_program):
        a100 = DeviceSimulator(get_device("a100"), seed=0).measure(heavy_conv_program)
        for device in list_devices():
            if device.name == "a100":
                continue
            assert DeviceSimulator(device, seed=0).measure(heavy_conv_program) > a100

    def test_cpu_server_class_ordering_on_heavy_conv(self, heavy_conv_program):
        epyc = DeviceSimulator(get_device("epyc-7452"), seed=0).measure(heavy_conv_program)
        old_xeon = DeviceSimulator(get_device("e5-2673"), seed=0).measure(heavy_conv_program)
        assert epyc < old_xeon


class TestAllOpsOnAllDevices:
    @pytest.mark.parametrize("device_name", [d.name for d in list_devices()])
    def test_every_op_family_has_sane_latency(self, device_name):
        device = get_device(device_name)
        simulator = DeviceSimulator(device, seed=1)
        rng = np.random.default_rng(1)
        for op_name, kwargs in SAMPLE_KWARGS.items():
            task = build_op(op_name, **kwargs, model="consistency")
            program = lower(task, random_schedule(task, rng, device.taxonomy))
            latency = simulator.measure(program)
            # Between 1 microsecond and 1 second for these small workloads.
            assert 1e-6 < latency < 1.0, f"{op_name} on {device_name}: {latency}"

    def test_latency_ratio_between_devices_varies_by_op(self):
        """Relative device performance is operator-dependent (the reason a
        single scaling factor, as in simple roofline transfer, is not enough
        and a learned cross-device model is needed)."""
        rng = np.random.default_rng(2)
        ratios = []
        for op_name in ("dense", "embedding_lookup", "softmax", "conv2d"):
            task = build_op(op_name, **SAMPLE_KWARGS[op_name], model="consistency")
            program = lower(task, random_schedule(task, rng, "gpu"))
            a100 = DeviceSimulator(get_device("a100"), seed=0).measure(program)
            epyc = DeviceSimulator(get_device("epyc-7452"), seed=0).measure(program)
            ratios.append(epyc / a100)
        assert max(ratios) > 2 * min(ratios)
