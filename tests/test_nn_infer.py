"""Equivalence tests for the autograd-free ``Module.infer`` path.

Every nn module must honour the :meth:`repro.nn.module.Module.infer`
contract: eval-mode semantics, outputs bit-identical to the autograd
``forward`` for float64 inputs, and the same computation carried out in
single precision for float32 inputs.  These tests sweep every module in
``repro.nn`` against that contract, and pin down the supporting tensor
machinery (no-copy adoption of float64 arrays, pooled scratch buffers).
"""

import numpy as np
import pytest

from repro.nn import (
    GELU,
    LSTM,
    MLP,
    Dropout,
    LSTMCell,
    LayerNorm,
    Linear,
    MultiHeadSelfAttention,
    ReLU,
    Sequential,
    Tanh,
    Tensor,
    TransformerEncoder,
    TransformerEncoderLayer,
    clear_scratch_buffers,
    no_grad,
    scratch_buffer,
)
from repro.nn.layers import Sigmoid

FLOAT32_RTOL = 1e-5


def _rng(seed=0):
    return np.random.default_rng(seed)


# Each case: (builder of an initialised module, input shape).  Builders take a
# seed so the parameter draw is deterministic but distinct per case.
MODULE_CASES = {
    "linear": (lambda s: Linear(6, 4, rng=_rng(s)), (5, 6)),
    "linear_no_bias": (lambda s: Linear(6, 4, bias=False, rng=_rng(s)), (5, 6)),
    "linear_3d": (lambda s: Linear(6, 4, rng=_rng(s)), (3, 7, 6)),
    "layernorm": (lambda s: LayerNorm(6), (5, 6)),
    "dropout": (lambda s: Dropout(0.5, rng=_rng(s)), (5, 6)),
    "relu": (lambda s: ReLU(), (5, 6)),
    "gelu": (lambda s: GELU(), (5, 6)),
    "tanh": (lambda s: Tanh(), (5, 6)),
    "sigmoid": (lambda s: Sigmoid(), (5, 6)),
    "mlp": (lambda s: MLP(6, [16, 8], 3, rng=_rng(s)), (5, 6)),
    "mlp_gelu_dropout": (
        lambda s: MLP(6, [16], 3, activation="gelu", dropout=0.25, rng=_rng(s)),
        (5, 6),
    ),
    "sequential": (
        lambda s: Sequential(Linear(6, 8, rng=_rng(s)), ReLU(), Linear(8, 4, rng=_rng(s + 1))),
        (5, 6),
    ),
    "attention": (lambda s: MultiHeadSelfAttention(8, 2, rng=_rng(s)), (3, 5, 8)),
    "encoder_layer": (
        lambda s: TransformerEncoderLayer(8, 2, ffn_dim=16, rng=_rng(s)),
        (3, 5, 8),
    ),
    "encoder": (
        lambda s: TransformerEncoder(8, 2, num_layers=2, ffn_dim=16, rng=_rng(s)),
        (3, 5, 8),
    ),
}


def _build(name, seed=0):
    builder, shape = MODULE_CASES[name]
    module = builder(seed).eval()
    x = _rng(seed + 100).normal(size=shape)
    return module, x


def _forward_reference(module, x):
    with no_grad():
        return module(Tensor(x)).data


class TestInferForwardEquivalence:
    @pytest.mark.parametrize("name", sorted(MODULE_CASES))
    def test_float64_bit_identical(self, name):
        module, x = _build(name)
        reference = _forward_reference(module, x)
        out = module.infer(x)
        assert out.dtype == np.float64
        assert np.array_equal(out, reference)

    @pytest.mark.parametrize("name", sorted(MODULE_CASES))
    def test_float32_stays_single_precision(self, name):
        module, x = _build(name)
        reference = _forward_reference(module, x)
        out = module.infer(x.astype(np.float32))
        assert out.dtype == np.float32
        # Scale-relative atol: deep float32 stacks (the MLP case reaches
        # ~1e-4 relative on near-zero outputs) still match to 1e-5 of the
        # output scale.
        atol = FLOAT32_RTOL * np.max(np.abs(reference))
        np.testing.assert_allclose(out, reference, rtol=FLOAT32_RTOL, atol=atol)

    @pytest.mark.parametrize("name", sorted(MODULE_CASES))
    def test_infer_does_not_mutate_input(self, name):
        module, x = _build(name)
        snapshot = x.copy()
        module.infer(x)
        assert np.array_equal(x, snapshot)

    def test_dropout_infer_is_eval_even_in_train_mode(self):
        # infer has eval-mode semantics *by definition*: even a module left in
        # training mode must not drop activations on the inference path.
        module = Dropout(0.5, rng=_rng(0)).train()
        x = _rng(1).normal(size=(5, 6))
        assert np.array_equal(module.infer(x), x)

    def test_mlp_dropout_eval_semantics(self):
        # With dropout > 0 and training mode on, forward is stochastic while
        # infer stays deterministic and equal to the eval forward.
        module, x = _build("mlp_gelu_dropout")
        eval_reference = _forward_reference(module, x)
        module.train()
        assert np.array_equal(module.infer(x), eval_reference)

    def test_linear_infer_out_buffer(self):
        module, x = _build("linear")
        reference = _forward_reference(module, x)
        out = np.empty((x.shape[0], module.out_features))
        result = module.infer(x, out=out)
        assert result is out
        assert np.array_equal(out, reference)


class TestAttentionMask:
    def test_masked_infer_matches_forward(self):
        module = MultiHeadSelfAttention(8, 2, rng=_rng(0)).eval()
        x = _rng(1).normal(size=(3, 5, 8))
        mask = np.ones((3, 5))
        mask[0, 3:] = 0.0
        mask[2, 1:] = 0.0
        with no_grad():
            reference = module(Tensor(x), mask=Tensor(mask)).data
        out = module.infer(x, mask=mask)
        assert np.array_equal(out, reference)
        # The mask must matter: masked positions change the answer.
        unmasked = module.infer(x)
        assert not np.array_equal(out, unmasked)

    def test_encoder_masked_infer_matches_forward(self):
        module = TransformerEncoder(8, 2, num_layers=2, ffn_dim=16, rng=_rng(0)).eval()
        x = _rng(1).normal(size=(3, 5, 8))
        mask = np.ones((3, 5))
        mask[1, 2:] = 0.0
        with no_grad():
            reference = module(Tensor(x), mask=Tensor(mask)).data
        assert np.array_equal(module.infer(x, mask=mask), reference)


class TestRecurrentInfer:
    def test_lstm_cell_matches_forward(self):
        cell = LSTMCell(6, 4, rng=_rng(0)).eval()
        x = _rng(1).normal(size=(5, 6))
        h0 = _rng(2).normal(size=(5, 4))
        c0 = _rng(3).normal(size=(5, 4))
        with no_grad():
            ref_h, ref_c = cell(Tensor(x), (Tensor(h0), Tensor(c0)))
        out_h, out_c = cell.infer(x, (h0, c0))
        assert np.array_equal(out_h, ref_h.data)
        assert np.array_equal(out_c, ref_c.data)

    def test_lstm_matches_forward(self):
        lstm = LSTM(6, 4, rng=_rng(0)).eval()
        steps = [_rng(10 + i).normal(size=(5, 6)) for i in range(3)]
        with no_grad():
            ref_last, (ref_h, ref_c) = lstm([Tensor(s) for s in steps])
        out_last, (out_h, out_c) = lstm.infer(steps)
        assert np.array_equal(out_last, ref_last.data)
        assert np.array_equal(out_h, ref_h.data)
        assert np.array_equal(out_c, ref_c.data)

    def test_lstm_float32_state(self):
        lstm = LSTM(6, 4, rng=_rng(0)).eval()
        steps = [_rng(10 + i).normal(size=(5, 6)).astype(np.float32) for i in range(3)]
        out_last, _ = lstm.infer(steps)
        assert out_last.dtype == np.float32


class TestPredictorInfer:
    def test_predictor_infer_bit_identical_to_forward(self, trained_trainer, t4_features):
        predictor = trained_trainer.predictor
        valid = t4_features[1]
        x, mask, leaf_counts, dev = predictor.tensors_from(valid)
        with no_grad():
            reference = predictor(x, mask, leaf_counts, dev).data
        out = predictor.infer(valid.x, valid.mask, valid.leaf_counts, valid.device_features)
        assert np.array_equal(out, reference)

    def test_predict_transformed_batch_invariant(self, trained_trainer, t4_features):
        predictor = trained_trainer.predictor
        valid = t4_features[1]
        whole = predictor.predict_transformed(valid, batch_size=1024)
        batched = predictor.predict_transformed(valid, batch_size=3)
        # Not bit-exact: BLAS kernel selection depends on the matmul shapes,
        # so different batch sizes can differ in the last ulps.
        np.testing.assert_allclose(batched, whole, rtol=1e-12)


class TestTensorNoCopy:
    def test_float64_array_adopted_without_copy(self):
        x = np.arange(12, dtype=np.float64).reshape(3, 4)
        assert np.shares_memory(Tensor(x).data, x)

    def test_non_float64_input_converted(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        t = Tensor(x)
        assert t.data.dtype == np.float64
        assert not np.shares_memory(t.data, x)


class TestScratchBuffers:
    def test_same_tag_and_shape_reuses_buffer(self):
        clear_scratch_buffers()
        a = scratch_buffer("test-pool", (4, 8))
        b = scratch_buffer("test-pool", (4, 8))
        assert a is b
        assert a.shape == (4, 8) and a.dtype == np.float64

    def test_shape_change_reallocates(self):
        clear_scratch_buffers()
        a = scratch_buffer("test-pool", (4, 8))
        b = scratch_buffer("test-pool", (2, 8))
        assert a is not b
        assert b.shape == (2, 8)

    def test_distinct_tags_distinct_buffers(self):
        clear_scratch_buffers()
        a = scratch_buffer("tag-a", (4, 8))
        b = scratch_buffer("tag-b", (4, 8))
        assert a is not b

    def test_clear_resets_pool(self):
        a = scratch_buffer("test-pool", (4, 8))
        clear_scratch_buffers()
        b = scratch_buffer("test-pool", (4, 8))
        assert a is not b
