"""Tests for core components: transforms, losses, CMD, metrics, KMeans, sampling."""

import numpy as np
import pytest

from repro.core.cmd import cmd_distance, cmd_distance_tensor
from repro.core.config import PredictorConfig, TrainingConfig
from repro.core.kmeans import KMeans
from repro.core.losses import hybrid_loss
from repro.core.metrics import error_report, mape, mspe, rmse, threshold_accuracy
from repro.core.sampling import select_tasks_kmeans, select_tasks_random
from repro.core.transforms import (
    BoxCoxTransform,
    IdentityTransform,
    QuantileTransform,
    YeoJohnsonTransform,
    make_transform,
)
from repro.errors import ConfigError, TrainingError
from repro.nn.tensor import Tensor


@pytest.fixture(scope="module")
def skewed_latencies():
    rng = np.random.default_rng(0)
    return np.exp(rng.normal(-9.5, 1.5, size=600))  # log-normal, seconds


class TestConfigs:
    def test_predictor_config_validation(self):
        with pytest.raises(ConfigError):
            PredictorConfig(d_model=30, num_heads=4)
        with pytest.raises(ConfigError):
            PredictorConfig(max_leaves=0)

    def test_training_config_validation(self):
        with pytest.raises(ConfigError):
            TrainingConfig(epochs=0)
        with pytest.raises(ConfigError):
            TrainingConfig(optimizer="lamb")
        with pytest.raises(ConfigError):
            TrainingConfig(label_transform="zscore")


class TestTransforms:
    @pytest.mark.parametrize("name", ["box-cox", "yeo-johnson", "quantile", "none", "log"])
    def test_roundtrip_inverse(self, name, skewed_latencies):
        transform = make_transform(name)
        z = transform.fit_transform(skewed_latencies)
        back = transform.inverse_transform(z)
        np.testing.assert_allclose(back, skewed_latencies, rtol=1e-3)

    def test_transformed_labels_standardised(self, skewed_latencies):
        z = BoxCoxTransform().fit_transform(skewed_latencies)
        assert abs(z.mean()) < 1e-8
        assert z.std() == pytest.approx(1.0, rel=1e-6)

    def test_box_cox_reduces_skew(self, skewed_latencies):
        from scipy.stats import skew

        z = BoxCoxTransform().fit_transform(skewed_latencies)
        assert abs(skew(z)) < abs(skew(skewed_latencies)) / 5

    def test_box_cox_requires_positive(self):
        with pytest.raises(TrainingError):
            BoxCoxTransform().fit(np.array([-1.0, 2.0]))

    def test_yeo_johnson_handles_negative(self):
        values = np.array([-2.0, -0.5, 0.0, 1.0, 3.0])
        transform = YeoJohnsonTransform().fit(values)
        np.testing.assert_allclose(transform.inverse_transform(transform.transform(values)), values, atol=1e-6)

    def test_use_before_fit_raises(self):
        with pytest.raises(TrainingError):
            IdentityTransform().transform(np.array([1.0]))

    def test_unknown_transform(self):
        with pytest.raises(TrainingError):
            make_transform("rank")

    def test_quantile_maps_to_normalish(self, skewed_latencies):
        z = QuantileTransform().fit_transform(skewed_latencies)
        assert abs(np.median(z)) < 0.2


class TestHybridLoss:
    def test_reduces_to_mse_when_lambda_zero(self):
        pred, target = Tensor([1.0, 2.0]), Tensor([0.0, 4.0])
        assert hybrid_loss(pred, target, lambda_mape=0.0).item() == pytest.approx(2.5)

    def test_lambda_adds_relative_term(self):
        pred, target = Tensor([1.0, 2.0]), Tensor([0.5, 4.0])
        base = hybrid_loss(pred, target, lambda_mape=0.0).item()
        combined = hybrid_loss(pred, target, lambda_mape=1.0).item()
        assert combined > base

    def test_negative_lambda_rejected(self):
        with pytest.raises(TrainingError):
            hybrid_loss(Tensor([1.0]), Tensor([1.0]), lambda_mape=-1.0)

    def test_gradients_flow(self):
        pred = Tensor([1.0, 2.0], requires_grad=True)
        hybrid_loss(pred, Tensor([0.5, 3.0])).backward()
        assert pred.grad is not None


class TestCMD:
    def test_identical_distributions_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(400, 8))
        assert cmd_distance(x, x.copy()) < 1e-12

    def test_shifted_distributions_have_larger_cmd(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(300, 8))
        near = rng.normal(0.1, 1.0, size=(300, 8))
        far = rng.normal(2.0, 2.0, size=(300, 8))
        assert cmd_distance(x, far) > cmd_distance(x, near)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(TrainingError):
            cmd_distance(np.zeros((4, 3)), np.zeros((4, 5)))

    def test_tensor_version_matches_numpy(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=(50, 6)), rng.normal(1.0, 1.5, size=(40, 6))
        numpy_value = cmd_distance(a, b)
        tensor_value = cmd_distance_tensor(Tensor(a), Tensor(b)).item()
        assert tensor_value == pytest.approx(numpy_value, rel=1e-6)

    def test_tensor_version_differentiable(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(30, 4)), requires_grad=True)
        b = Tensor(rng.normal(1.0, 1.0, size=(30, 4)))
        cmd_distance_tensor(a, b).backward()
        assert a.grad is not None and np.any(a.grad != 0)


class TestMetrics:
    def test_mape_and_rmse_values(self):
        pred, target = np.array([1.1, 2.0]), np.array([1.0, 4.0])
        assert mape(pred, target) == pytest.approx((0.1 + 0.5) / 2)
        assert rmse(pred, target) == pytest.approx(np.sqrt((0.01 + 4.0) / 2))
        assert mspe(pred, target) == pytest.approx((0.01 + 0.25) / 2)

    def test_threshold_accuracy(self):
        pred, target = np.array([1.0, 1.5, 3.0]), np.array([1.0, 1.0, 1.0])
        assert threshold_accuracy(pred, target, 0.1) == pytest.approx(1 / 3)

    def test_error_report_keys(self):
        report = error_report(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        assert {"mape", "rmse", "mspe", "5%accuracy", "10%accuracy", "20%accuracy"} <= set(report)

    def test_empty_or_mismatched_raises(self):
        with pytest.raises(TrainingError):
            mape(np.array([]), np.array([]))
        with pytest.raises(TrainingError):
            rmse(np.array([1.0]), np.array([1.0, 2.0]))


class TestKMeans:
    def test_separable_clusters_recovered(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.2, size=(50, 2))
        b = rng.normal(5.0, 0.2, size=(50, 2))
        result = KMeans(2, seed=0).fit(np.vstack([a, b]))
        labels_a, labels_b = set(result.labels[:50]), set(result.labels[50:])
        assert labels_a.isdisjoint(labels_b)

    def test_clamps_k_to_sample_count(self):
        kmeans = KMeans(10, seed=0)
        result = kmeans.fit(np.array([[0.0], [1.0], [2.0]]))
        assert kmeans.num_clusters == 3
        assert result.centers.shape == (3, 1)

    def test_predict_assigns_nearest_center(self):
        kmeans = KMeans(2, seed=0)
        kmeans.fit(np.array([[0.0], [0.1], [5.0], [5.1]]))
        labels = kmeans.predict(np.array([[0.05], [5.05]]))
        assert labels[0] != labels[1]

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(60, 3))
        first = KMeans(4, seed=7).fit(x)
        second = KMeans(4, seed=7).fit(x)
        assert np.array_equal(first.labels, second.labels)

    def test_invalid_inputs(self):
        with pytest.raises(TrainingError):
            KMeans(0)
        with pytest.raises(TrainingError):
            KMeans(2).fit(np.zeros((0, 3)))
        with pytest.raises(TrainingError):
            KMeans(2).predict(np.zeros((2, 2)))


class TestTaskSampling:
    def _features_by_task(self, num_tasks=12, seed=0):
        rng = np.random.default_rng(seed)
        features = {}
        for index in range(num_tasks):
            center = rng.normal(scale=3.0, size=4)
            features[f"task{index}"] = center + rng.normal(scale=0.1, size=(5, 4))
        return features

    def test_kmeans_selection_size_and_uniqueness(self):
        features = self._features_by_task()
        selected = select_tasks_kmeans(features, 5, seed=0)
        assert len(selected) == 5
        assert len(set(selected)) == 5
        assert set(selected) <= set(features)

    def test_kmeans_selection_covers_clusters_better_than_random_worst_case(self):
        # With well-separated clusters, the KMeans selection must pick tasks
        # from distinct clusters.
        rng = np.random.default_rng(1)
        features = {}
        for cluster in range(4):
            for index in range(3):
                features[f"c{cluster}_t{index}"] = rng.normal(cluster * 10.0, 0.1, size=(4, 3))
        selected = select_tasks_kmeans(features, 4, seed=0)
        clusters_covered = {name.split("_")[0] for name in selected}
        assert len(clusters_covered) == 4

    def test_kmeans_selection_requests_more_than_available(self):
        features = self._features_by_task(num_tasks=3)
        assert len(select_tasks_kmeans(features, 10, seed=0)) == 3

    def test_random_selection(self):
        keys = [f"task{i}" for i in range(20)]
        selected = select_tasks_random(keys, 6, seed=1)
        assert len(selected) == 6 and len(set(selected)) == 6

    def test_empty_inputs_raise(self):
        with pytest.raises(TrainingError):
            select_tasks_kmeans({}, 3)
        with pytest.raises(TrainingError):
            select_tasks_random([], 3)
