"""Tests for the backend-agnostic CostModel protocol and registry.

Covers the protocol conformance of every runnable backend, pickle-free
checkpoint round-trips through the ModelRegistry, legacy untagged trainer
checkpoints, unknown-backend tags, canonical naming/aliases, and serving
model-level queries through multiple backends.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.backends import (
    BaselineBackend,
    CDMPPBackend,
    CostModel,
    as_cost_model,
    available_backends,
    backend_of_checkpoint,
    load_backend,
    make_backend,
    resolve_backend_name,
)
from repro.baselines import (
    BASELINE_CAPABILITIES,
    XGBoostCostModel,
    baseline_capabilities,
    canonical_baseline_name,
    make_baseline,
)
from repro.core.persistence import save_trainer
from repro.core.trainer import Trainer
from repro.dataset.tenset import DatasetConfig, generate_dataset
from repro.dataset.splits import split_dataset
from repro.errors import ServingError, TrainingError
from repro.serving import FleetService, ModelRegistry, PredictionService

# Cheap configurations per backend, fast enough for unit tests.
BACKEND_CONFIGS = {
    "xgboost": {"n_estimators": 8},
    "tlp": {"epochs": 4},
    "habitat": {"target_device": "t4", "epochs": 2},
    "tiramisu": {"epochs": 1, "max_train_samples": 30},
}


@pytest.fixture(scope="module")
def backend_splits():
    """Small single-GPU splits shared by the backend tests."""
    dataset = generate_dataset(
        DatasetConfig(
            devices=("t4",),
            zoo_models=("bert_tiny",),
            num_synthetic_models=1,
            schedules_per_task=3,
            seed=0,
        )
    )
    return split_dataset(dataset.records("t4"), seed=0)


@pytest.fixture(scope="module")
def fitted_backends(backend_splits):
    """Every runnable baseline backend, fitted once."""
    fitted = {}
    for name, config in BACKEND_CONFIGS.items():
        model = make_backend(name, **config)
        model.fit(backend_splits.train, valid=backend_splits.valid)
        fitted[name] = model
    return fitted


class TestNaming:
    def test_canonical_names_and_aliases(self):
        assert canonical_baseline_name("xgboost") == "xgboost"
        assert canonical_baseline_name("autotvm_xgboost") == "xgboost"
        assert canonical_baseline_name("AutoTVM-XGBoost") == "xgboost"
        assert canonical_baseline_name("cdmpp") == "cdmpp"
        with pytest.raises(TrainingError):
            canonical_baseline_name("not-a-method")

    def test_make_baseline_accepts_aliases(self):
        assert isinstance(make_baseline("autotvm_xgboost"), XGBoostCostModel)

    def test_make_baseline_cdmpp_points_to_backend(self):
        with pytest.raises(TrainingError, match="make_backend"):
            make_baseline("cdmpp")

    def test_capabilities_resolve_through_aliases(self):
        assert baseline_capabilities("xgboost") == BASELINE_CAPABILITIES["autotvm_xgboost"]
        assert baseline_capabilities("autotvm_xgboost") == baseline_capabilities("xgboost")
        assert baseline_capabilities("cdmpp")["cross_device"]

    def test_backend_registry_shares_the_name_table(self):
        assert resolve_backend_name("autotvm_xgboost") == "xgboost"
        assert set(available_backends()) == {
            "cdmpp",
            "xgboost",
            "tlp",
            "habitat",
            "tiramisu",
            "distilled",
        }
        with pytest.raises(TrainingError, match="available backends"):
            resolve_backend_name("nnlqp")  # known method, not constructible

    def test_custom_backends_register_outside_the_table1_families(self):
        from repro.backends import register_backend
        from repro.backends.registry import _REGISTRY

        sentinel = object()
        register_backend("my_gnn", lambda **cfg: sentinel, lambda path: sentinel)
        try:
            assert resolve_backend_name("My-GNN") == "my_gnn"
            assert "my_gnn" in available_backends()
            assert make_backend("my_gnn") is sentinel
        finally:
            del _REGISTRY["my_gnn"]


class TestProtocolConformance:
    def test_every_backend_implements_the_protocol(self, fitted_backends, backend_splits):
        for name, model in fitted_backends.items():
            assert isinstance(model, CostModel)
            assert model.backend == name
            assert model.fitted
            stats = model.train_stats
            assert stats.train_seconds > 0
            assert stats.throughput_samples_per_s > 0
            assert np.isfinite(stats.best_valid_mape)
            caps = model.capabilities
            assert set(caps) == {"absolute_time", "model_level", "op_level", "cross_device"}
            programs = [record.program for record in backend_splits.test[:4]]
            predictions = model.predict_programs(programs, "t4")
            assert predictions.shape == (4,)
            assert np.all(predictions > 0)
            metrics = model.evaluate(backend_splits.test)
            assert np.isfinite(metrics["mape"])

    def test_cdmpp_backend_protocol(self, trained_trainer, t4_splits):
        model = CDMPPBackend(trainer=trained_trainer)
        assert model.backend == "cdmpp"
        assert model.fitted
        assert model.capabilities["cross_device"]
        programs = [record.program for record in t4_splits.test[:3]]
        per_program = model.predict_programs(programs, "t4")
        assert per_program.shape == (3,)
        mixed = model.predict_programs(programs, ["t4", "k80", "t4"])
        assert mixed.shape == (3,)
        metrics = model.evaluate(t4_splits.test[:10])
        assert np.isfinite(metrics["mape"])

    def test_per_program_device_mismatch_rejected(self, fitted_backends, backend_splits):
        programs = [record.program for record in backend_splits.test[:3]]
        with pytest.raises(TrainingError):
            fitted_backends["xgboost"].predict_programs(programs, ["t4", "k80"])

    def test_train_stats_before_fit_raises(self):
        with pytest.raises(TrainingError):
            make_backend("xgboost").train_stats

    def test_as_cost_model_adapters(self, trained_trainer):
        backend = as_cost_model(trained_trainer)
        assert isinstance(backend, CDMPPBackend)
        assert backend.wraps(trained_trainer)
        assert as_cost_model(backend) is backend
        baseline = make_baseline("xgboost")
        adapted = as_cost_model(baseline)
        assert isinstance(adapted, BaselineBackend)
        assert adapted.wraps(baseline)
        with pytest.raises(TrainingError):
            as_cost_model(object())


class TestCheckpointRoundTrips:
    @pytest.mark.parametrize("name", sorted(BACKEND_CONFIGS))
    def test_registry_roundtrip_identical_predictions(
        self, name, fitted_backends, backend_splits, tmp_path
    ):
        registry = ModelRegistry(tmp_path)
        model = fitted_backends[name]
        registry.save(f"m-{name}", model, device="t4", scale="tiny")
        assert registry.backend_of(f"m-{name}") == name
        restored = registry.load(f"m-{name}")
        assert isinstance(restored, BaselineBackend)
        assert restored.backend == name
        reference = model.predict_records(backend_splits.test)
        reloaded = restored.predict_records(backend_splits.test)
        np.testing.assert_allclose(reloaded, reference)
        # Train stats survive the round trip (the Fig. 6 comparison needs them).
        assert restored.train_stats.train_seconds == pytest.approx(
            model.train_stats.train_seconds
        )

    def test_cdmpp_roundtrip_through_registry(self, trained_trainer, t4_features, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("cdmpp-model", CDMPPBackend(trainer=trained_trainer))
        assert registry.backend_of("cdmpp-model") == "cdmpp"
        restored = registry.load("cdmpp-model")
        assert isinstance(restored, Trainer)  # back-compat contract
        _, _, test = t4_features
        np.testing.assert_allclose(restored.predict(test), trained_trainer.predict(test))

    def test_legacy_untagged_checkpoint_loads_as_cdmpp(
        self, trained_trainer, t4_features, tmp_path
    ):
        path = tmp_path / "legacy.npz"
        save_trainer(trained_trainer, path)
        # Strip the backend tag to emulate a pre-protocol checkpoint.
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(arrays["meta_json"].tobytes()).decode("utf-8"))
        del meta["backend"]
        arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)

        assert backend_of_checkpoint(path) == "cdmpp"
        restored = load_backend(path)
        assert isinstance(restored, CDMPPBackend)
        registry = ModelRegistry(tmp_path)
        trainer = registry.load("legacy")
        assert isinstance(trainer, Trainer)
        _, _, test = t4_features
        np.testing.assert_allclose(trainer.predict(test), trained_trainer.predict(test))

    def test_unknown_backend_tag_fails_clearly(self, fitted_backends, tmp_path):
        path = tmp_path / "exotic.npz"
        fitted_backends["xgboost"].save(path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {key: archive[key] for key in archive.files}
        meta = json.loads(bytes(arrays["meta_json"].tobytes()).decode("utf-8"))
        meta["backend"] = "quantum_annealer"
        arrays["meta_json"] = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
        np.savez_compressed(path, **arrays)
        with pytest.raises(TrainingError, match="quantum_annealer"):
            load_backend(path)

    def test_load_trainer_refuses_baseline_checkpoints(self, fitted_backends, tmp_path):
        from repro.core.persistence import load_trainer

        path = tmp_path / "xgb.npz"
        fitted_backends["xgboost"].save(path)
        with pytest.raises(TrainingError, match="load_backend"):
            load_trainer(path)

    def test_unfitted_backend_refuses_to_save(self, tmp_path):
        with pytest.raises(TrainingError):
            make_backend("xgboost").save(tmp_path / "nope.npz")


class TestRegistryCacheEviction:
    def test_delete_evicts_load_shared_cache(self, fitted_backends, tmp_path, monkeypatch):
        registry = ModelRegistry(tmp_path)
        registry.save("m", fitted_backends["xgboost"])
        first = registry.load_shared("m")
        assert registry.load_shared("m") is first
        # Freeze mtime reads so re-registering collides with the old mtime.
        frozen = registry.path_for("m").stat().st_mtime_ns
        real_stat = type(registry.path_for("m")).stat

        class _FrozenStat:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, attr):
                if attr == "st_mtime_ns":
                    return frozen
                return getattr(self._inner, attr)

        monkeypatch.setattr(
            type(registry.path_for("m")),
            "stat",
            lambda self, **kw: _FrozenStat(real_stat(self, **kw)),
        )
        assert registry.delete("m")
        registry.save("m", fitted_backends["tlp"])
        fresh = registry.load_shared("m")
        assert fresh is not first
        assert fresh.backend == "tlp"


class TestServingAcrossBackends:
    def test_prediction_service_serves_baseline_backends(
        self, fitted_backends, backend_splits
    ):
        service = PredictionService(fitted_backends["xgboost"])
        programs = [record.program for record in backend_splits.test[:5]]
        served = service.predict(programs, "t4")
        direct = fitted_backends["xgboost"].predict_programs(programs, "t4")
        np.testing.assert_allclose(served, direct)
        stats = service.describe_stats()
        assert stats["batches"] == 1
        # Exact repeats come from the prediction cache, not the predictor.
        again = service.predict(programs, "t4")
        np.testing.assert_allclose(again, served)
        assert service.describe_stats()["predictions_computed"] == len(programs)

    def test_distinct_backends_never_alias_in_the_cache(
        self, fitted_backends, backend_splits
    ):
        shared_cache_service = PredictionService(
            {"t4": fitted_backends["xgboost"], "k80": fitted_backends["tlp"]}
        )
        program = backend_splits.test[0].program
        xgb = shared_cache_service.predict_program(program, "t4")
        tlp = shared_cache_service.predict_program(program, "k80")
        assert xgb != tlp  # distinct backends, distinct cache entries

    def test_model_level_queries_through_two_backends(
        self, trained_trainer, fitted_backends
    ):
        service = PredictionService(
            {"t4": fitted_backends["xgboost"], "k80": trained_trainer}
        )
        via_xgb = service.predict_model("bert_tiny", "t4", seed=0)
        via_cdmpp = service.predict_model("bert_tiny", "k80", seed=0)
        assert via_xgb.predicted_latency_s > 0
        assert via_cdmpp.predicted_latency_s > 0
        assert via_xgb.model == via_cdmpp.model == "bert_tiny"

    def test_op_level_only_backend_refuses_model_queries(self, fitted_backends):
        service = PredictionService(fitted_backends["tiramisu"])
        with pytest.raises(ServingError, match="op-level only"):
            service.predict_model("bert_tiny", "t4", seed=0)

    def test_unfitted_backend_rejected_by_service(self):
        with pytest.raises(ServingError, match="unfitted"):
            PredictionService(make_backend("xgboost"))

    def test_fleet_serves_mixed_backends_from_registry(
        self, trained_trainer, fitted_backends, tmp_path
    ):
        registry = ModelRegistry(tmp_path)
        registry.save("xgb-t4", fitted_backends["xgboost"], device="t4")
        registry.save("cdmpp-k80", CDMPPBackend(trainer=trained_trainer), device="k80")
        fleet = FleetService.from_registry(
            registry, {"t4": "xgb-t4", "k80": "cdmpp-k80"}
        )
        results = fleet.predict_model_fleet("bert_tiny", seed=0)
        assert sorted(prediction.device for prediction in results) == ["k80", "t4"]
        assert all(prediction.predicted_latency_s > 0 for prediction in results)
        # Two distinct underlying models -> two batch groups in one flush.
        assert fleet.describe_stats()["kernel_service"]["batches"] == 2

    def test_fleet_gates_op_level_only_backends(self, fitted_backends):
        fleet = FleetService({"t4": fitted_backends["tiramisu"]})
        with pytest.raises(ServingError, match="op-level only"):
            fleet.predict_model("bert_tiny", "t4", seed=0)

    def test_replay_accepts_cost_model_directly(self, fitted_backends):
        from repro.replay.e2e import predict_end_to_end

        outcome = predict_end_to_end(
            "bert_tiny", "t4", cost_fn=fitted_backends["xgboost"], seed=0
        )
        assert outcome.iteration_time_s > 0

    def test_replay_gates_op_level_only_backends_too(self, fitted_backends):
        from repro.errors import ReplayError
        from repro.replay.e2e import predict_end_to_end

        with pytest.raises(ReplayError, match="op-level only"):
            predict_end_to_end("bert_tiny", "t4", cost_fn=fitted_backends["tiramisu"], seed=0)


class TestSharedDefaultConfigs:
    def test_default_trainers_do_not_share_a_config(self):
        assert Trainer().config is not Trainer().config

    def test_default_predictors_do_not_share_a_config(self):
        from repro.core.predictor import CDMPPPredictor

        assert CDMPPPredictor().config is not CDMPPPredictor().config

    def test_autotuner_defaults_are_per_instance(self):
        from repro.core.autotuner import AutoTuner

        assert AutoTuner().search_space is not AutoTuner().search_space


class TestCompareCLI:
    def test_compare_subcommand_runs_fast_backends(self, capsys):
        from repro.cli import main

        rc = main(["compare", "t4", "--scale", "tiny", "--backends", "xgboost,tlp"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table-1-style comparison" in out
        assert "xgboost" in out and "tlp" in out
        assert "best test MAPE" in out

    def test_compare_reports_unrunnable_backends(self, capsys):
        from repro.cli import main

        # habitat cannot target a CPU; the comparison reports it and goes on.
        rc = main(["compare", "epyc-7452", "--scale", "tiny", "--backends", "habitat,xgboost"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "failed" in out
        assert "xgboost" in out

    def test_train_and_query_through_a_baseline_checkpoint(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("CDMPP_REGISTRY", str(tmp_path))
        assert main(["train", "t4", "--scale", "tiny", "--backend", "xgboost"]) == 0
        capsys.readouterr()
        assert main(["query", "bert_tiny", "1", "t4", "--scale", "tiny", "--backend", "xgboost"]) == 0
        out = capsys.readouterr().out
        assert "loading pre-trained xgboost model 't4-tiny-xgboost'" in out
        assert "predicted latency" in out

    def test_explicit_checkpoint_with_wrong_backend_flag_errors(
        self, capsys, tmp_path, fitted_backends
    ):
        from repro.cli import main

        checkpoint = tmp_path / "xgb.npz"
        fitted_backends["xgboost"].save(checkpoint)
        rc = main([
            "query", "bert_tiny", "1", "t4", "--scale", "tiny",
            "--backend", "tlp", "--checkpoint", str(checkpoint),
        ])
        assert rc == 2
        err = capsys.readouterr().err
        assert "written by backend 'xgboost'" in err
        # Without --backend the checkpoint serves as whatever it is.
        assert main([
            "query", "bert_tiny", "1", "t4", "--scale", "tiny",
            "--checkpoint", str(checkpoint),
        ]) == 0

    def test_query_backend_mismatch_is_a_clear_error(self, capsys, tmp_path, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("CDMPP_REGISTRY", str(tmp_path))
        assert main(["train", "t4", "--scale", "tiny", "--backend", "tlp", "--name", "t4-tiny-xgboost"]) == 0
        capsys.readouterr()
        rc = main(["query", "bert_tiny", "1", "t4", "--scale", "tiny", "--backend", "xgboost"])
        assert rc == 2
        assert "written by backend 'tlp'" in capsys.readouterr().err
