"""Tests for graph-level fleet serving (repro.serving.fleet) and its CLI."""

from pathlib import Path

import numpy as np
import pytest

from repro.cli import main, render_cli_docs
from repro.core.api import CDMPP
from repro.errors import ReplayError, ServingError
from repro.graph.model import ModelGraph
from repro.graph.partition import partition_into_programs
from repro.replay.e2e import compose_latencies
from repro.serving import DeviceShardedCache, FleetService, ModelRegistry

GAP_S = 2e-6


@pytest.fixture(scope="module")
def fleet(trained_trainer):
    """A two-GPU fleet sharing one cross-device model."""
    return FleetService({"t4": trained_trainer, "k80": trained_trainer})


class TestDeviceShardedCache:
    def test_routes_keys_to_device_shards(self):
        cache = DeviceShardedCache(capacity_per_device=4)
        cache.put(("wk1", 1, "t4", 16), 1.0)
        cache.put(("wk1", 1, "k80", 16), 2.0)
        assert cache.get(("wk1", 1, "t4", 16)) == 1.0
        assert cache.get(("wk1", 1, "k80", 16)) == 2.0
        assert set(cache.devices) == {"t4", "k80"}
        assert len(cache) == 2
        assert len(cache.shard("t4")) == 1

    def test_invalidate_device_leaves_other_shards(self):
        cache = DeviceShardedCache(capacity_per_device=4)
        cache.put(("wk1", 1, "t4", 16), 1.0)
        cache.put(("wk2", 2, "t4", 16), 2.0)
        cache.put(("wk1", 1, "k80", 16), 3.0)
        assert cache.invalidate_device("t4") == 2
        assert len(cache.shard("t4")) == 0
        assert cache.peek(("wk1", 1, "k80", 16)) == 3.0
        assert cache.invalidate_device("unknown") == 0

    def test_capacity_is_per_device(self):
        cache = DeviceShardedCache(capacity_per_device=2)
        for i in range(3):
            cache.put((f"wk{i}", i, "t4", 16), float(i))
            cache.put((f"wk{i}", i, "k80", 16), float(i))
        assert len(cache.shard("t4")) == 2
        assert len(cache.shard("k80")) == 2
        assert cache.evictions == 2
        stats = cache.stats()
        assert set(stats["devices"]) == {"t4", "k80"}

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            DeviceShardedCache(capacity_per_device=0)


class TestFleetComposition:
    """The acceptance contract: the composed estimate IS built from the
    per-kernel predictions it reports."""

    def test_replay_compose_matches_facade(self, fleet, trained_trainer):
        facade = CDMPP.from_trainer(trained_trainer)
        reference = facade.predict_model("bert_tiny", "t4", seed=0)
        prediction = fleet.predict_model("bert_tiny", "t4", seed=0)
        assert prediction.predicted_latency_s == pytest.approx(
            reference.predicted_latency_s, rel=1e-9
        )
        assert prediction.per_kernel_latency_s == pytest.approx(
            reference.per_program_latency_s, rel=1e-9
        )
        assert prediction.num_nodes == reference.num_nodes

    def test_serial_compose_is_sum_of_per_kernel_predictions(self, fleet):
        prediction = fleet.predict_model("bert_tiny", "t4", seed=0, compose="serial")
        dfg = partition_into_programs("bert_tiny", target_kind="gpu", seed=0)
        expected = (
            sum(prediction.per_kernel_latency_s[node.task_key] for node in dfg.nodes.values())
            + GAP_S * len(dfg)
        )
        assert prediction.predicted_latency_s == pytest.approx(expected, rel=1e-9)
        assert prediction.serial_latency_s == prediction.predicted_latency_s
        assert prediction.compose == "serial"

    def test_replay_compose_equals_compose_latencies_of_reported_kernels(self, fleet):
        prediction = fleet.predict_model("bert_tiny", "k80", seed=0)
        dfg = partition_into_programs("bert_tiny", target_kind="gpu", seed=0)
        recomposed = compose_latencies(
            dfg, prediction.per_kernel_latency_s, "k80", gap_s=GAP_S, mode="replay"
        )
        assert prediction.predicted_latency_s == pytest.approx(
            recomposed.iteration_time_s, rel=1e-9
        )

    def test_serial_bounds_replay_and_speedup(self, fleet):
        prediction = fleet.predict_model("inception_v3", "t4", seed=0)
        assert prediction.serial_latency_s >= prediction.predicted_latency_s
        assert prediction.parallel_speedup >= 1.0

    def test_per_kernel_latencies_match_service_predictions(self, fleet):
        prediction = fleet.predict_model("bert_tiny", "t4", seed=0)
        dfg = partition_into_programs("bert_tiny", target_kind="gpu", seed=0)
        unique = dfg.unique_programs()
        values = fleet.predict_programs(list(unique.values()), "t4")
        for key, value in zip(unique, values):
            assert prediction.per_kernel_latency_s[key] == pytest.approx(value, rel=1e-12)


class TestFleetFanout:
    def test_fanout_covers_all_devices_ranked(self, fleet):
        results = fleet.predict_model_fleet("bert_tiny", seed=0)
        assert [r.device for r in results] != []
        assert sorted(r.device for r in results) == ["k80", "t4"]
        latencies = [r.predicted_latency_s for r in results]
        assert latencies == sorted(latencies)

    def test_fanout_matches_single_device_queries(self, fleet):
        results = {r.device: r for r in fleet.predict_model_fleet("bert_tiny", seed=0)}
        for device in ("t4", "k80"):
            single = fleet.predict_model("bert_tiny", device, seed=0)
            assert results[device].predicted_latency_s == pytest.approx(
                single.predicted_latency_s, rel=1e-9
            )

    def test_shared_model_fans_out_in_one_predictor_batch(self, trained_trainer):
        fleet = FleetService({"t4": trained_trainer, "k80": trained_trainer})
        fleet.predict_model_fleet("bert_tiny", seed=0)
        stats = fleet.describe_stats()["kernel_service"]
        assert stats["flushes"] == 1
        assert stats["batches"] == 1  # same model object -> one vectorized call

    def test_registered_device_joins_existing_batch_group(self, trained_trainer):
        fleet = FleetService({"t4": trained_trainer})
        fleet.register_device("k80", trained_trainer)  # same underlying trainer
        fleet.predict_model_fleet("bert_tiny", seed=0)
        assert fleet.describe_stats()["kernel_service"]["batches"] == 1

    def test_duplicate_devices_deduplicated(self, fleet):
        results = fleet.predict_model_fleet("bert_tiny", devices=["t4", "t4"], seed=0)
        assert [r.device for r in results] == ["t4"]

    def test_device_keys_canonicalized(self, trained_trainer):
        fleet = FleetService({"T4": trained_trainer})  # alias-cased key
        assert fleet.devices == ["t4"]
        prediction = fleet.predict_model("bert_tiny", "T4", seed=0)
        assert prediction.device == "t4"
        fleet.register_device("K80", trained_trainer)
        assert fleet.devices == ["k80", "t4"]

    def test_partition_cache_reused_across_queries(self, trained_trainer):
        fleet = FleetService({"t4": trained_trainer, "k80": trained_trainer})
        fleet.predict_model_fleet("bert_tiny", seed=0)
        assert fleet.stats.partitions == 1  # both GPUs share one taxonomy
        fleet.predict_model_fleet("bert_tiny", seed=0)
        assert fleet.stats.partitions == 1
        assert fleet.stats.partition_cache_hits >= 1

    def test_accepts_model_graph_and_dfg_inputs(self, fleet, trained_trainer):
        from repro.graph.zoo import build_model

        graph = build_model("bert_tiny")
        by_name = fleet.predict_model("bert_tiny", "t4", seed=0)
        by_graph = fleet.predict_model(graph, "t4", seed=0)
        assert by_graph.predicted_latency_s == pytest.approx(
            by_name.predicted_latency_s, rel=1e-9
        )
        dfg = partition_into_programs(graph, target_kind="gpu", seed=0)
        by_dfg = fleet.predict_model(dfg, "t4", seed=0)
        assert by_dfg.predicted_latency_s == pytest.approx(
            by_name.predicted_latency_s, rel=1e-9
        )


class TestFleetCaches:
    def test_per_device_cache_isolation_on_swap(self, trained_trainer):
        fleet = FleetService({"t4": trained_trainer, "k80": trained_trainer})
        fleet.predict_model_fleet("bert_tiny", seed=0)
        t4_size = len(fleet.prediction_cache.shard("t4"))
        k80_size = len(fleet.prediction_cache.shard("k80"))
        assert t4_size > 0 and k80_size > 0

        fleet.register_device("t4", trained_trainer)  # "retrain" t4 only
        assert len(fleet.prediction_cache.shard("t4")) == 0
        assert len(fleet.prediction_cache.shard("k80")) == k80_size

        # k80 answers from its untouched shard: no new featurization.
        featurized = fleet.describe_stats()["kernel_service"]["programs_featurized"]
        fleet.predict_model("bert_tiny", "k80", seed=0)
        stats = fleet.describe_stats()["kernel_service"]
        assert stats["programs_featurized"] == featurized

    def test_feature_cache_shared_across_devices(self, trained_trainer):
        fleet = FleetService({"t4": trained_trainer, "k80": trained_trainer})
        assert fleet.service_for_kernels().feature_cache is fleet.feature_cache
        fleet.predict_model_fleet("bert_tiny", seed=0)
        assert len(fleet.feature_cache) > 0

    def test_warm_queries_skip_the_predictor(self, trained_trainer):
        fleet = FleetService({"t4": trained_trainer})
        first = fleet.predict_model("bert_tiny", "t4", seed=0)
        batches = fleet.describe_stats()["kernel_service"]["batches"]
        second = fleet.predict_model("bert_tiny", "t4", seed=0)
        assert fleet.describe_stats()["kernel_service"]["batches"] == batches
        assert second.predicted_latency_s == pytest.approx(
            first.predicted_latency_s, rel=1e-12
        )


class TestFleetErrors:
    def test_unknown_device_rejected(self, fleet):
        with pytest.raises(ServingError):
            fleet.predict_model("bert_tiny", "epyc-7452", seed=0)

    def test_empty_model_graph_rejected(self, fleet):
        with pytest.raises(ServingError):
            fleet.predict_model(ModelGraph("empty"), "t4", seed=0)

    def test_empty_device_list_rejected(self, fleet):
        with pytest.raises(ServingError):
            fleet.predict_model_fleet("bert_tiny", devices=[], seed=0)

    def test_unknown_compose_mode_rejected(self, fleet):
        with pytest.raises(ServingError):
            fleet.predict_model("bert_tiny", "t4", compose="magic")

    def test_fallback_only_fleet_needs_explicit_devices(self, trained_trainer):
        fleet = FleetService(trained_trainer)  # only the "*" fallback
        with pytest.raises(ServingError):
            fleet.predict_model_fleet("bert_tiny")
        results = fleet.predict_model_fleet("bert_tiny", devices=["t4"], seed=0)
        assert results[0].device == "t4"

    def test_compose_latencies_rejects_empty_dfg_and_bad_mode(self, dense_program):
        from repro.graph.dfg import TIRDataFlowGraph

        with pytest.raises(ReplayError):
            compose_latencies(TIRDataFlowGraph("empty"), {}, "t4")
        dfg = partition_into_programs("bert_tiny", target_kind="gpu", seed=0)
        with pytest.raises(ReplayError):
            compose_latencies(dfg, {}, "t4", mode="diagonal")


class TestFleetRegistry:
    def test_from_registry_shares_checkpoint_across_devices(
        self, trained_trainer, tmp_path
    ):
        registry = ModelRegistry(tmp_path)
        registry.save("cross", trained_trainer)
        fleet = FleetService.from_registry(registry, {"t4": "cross", "k80": "cross"})
        service = fleet.service_for_kernels()
        assert service.model_for("t4") is service.model_for("k80")
        fleet.predict_model_fleet("bert_tiny", seed=0)
        assert fleet.describe_stats()["kernel_service"]["batches"] == 1

    def test_from_registry_single_name_with_devices(self, trained_trainer, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("cross", trained_trainer)
        fleet = FleetService.from_registry(registry, "cross", devices=["t4", "k80"])
        assert fleet.devices == ["k80", "t4"]

    def test_load_shared_memoizes_until_reregistered(self, trained_trainer, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("m", trained_trainer)
        first = registry.load_shared("m")
        assert registry.load_shared("m") is first
        assert registry.load("m") is not first  # plain load never memoizes


class TestFleetCLI:
    @pytest.fixture()
    def registered(self, trained_trainer, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("t4-tiny", trained_trainer, device="t4", scale="tiny")
        registry.save("k80-tiny", trained_trainer, device="k80", scale="tiny")
        return str(tmp_path)

    def test_predict_model_serves_from_checkpoints(self, capsys, registered):
        exit_code = main(
            ["predict-model", "bert_tiny", "--devices", "t4,k80", "--registry", registered]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "end-to-end latency on 2 device(s)" in output
        assert "t4" in output and "k80" in output
        assert "training" not in output  # never retrains

    def test_predict_model_without_checkpoints_is_an_error(self, capsys, tmp_path):
        exit_code = main(
            ["predict-model", "bert_tiny", "--devices", "t4", "--registry", str(tmp_path)]
        )
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "no registered checkpoint" in err
        assert "cdmpp train t4" in err

    def test_predict_model_unknown_device_is_an_error(self, capsys, registered):
        exit_code = main(
            ["predict-model", "bert_tiny", "--devices", "tpu-v9", "--registry", registered]
        )
        assert exit_code == 2
        assert "unknown device" in capsys.readouterr().err

    def test_fleet_streams_multi_device_queries(self, capsys, registered, tmp_path):
        requests = tmp_path / "requests.txt"
        requests.write_text("# comment\nbert_tiny\nbert_tiny 1 t4\nnope 1\n")
        exit_code = main(
            [
                "fleet",
                "--devices",
                "t4,k80",
                "--registry",
                registered,
                "--requests",
                str(requests),
            ]
        )
        assert exit_code == 0
        captured = capsys.readouterr()
        assert "served 2 model queries" in captured.out
        assert "bad query" in captured.err


class TestCLIDocsInSync:
    def test_cli_md_matches_argparse_tree(self):
        doc = Path(__file__).resolve().parent.parent / "docs" / "cli.md"
        assert doc.exists(), "docs/cli.md is missing; run tools/gen_cli_docs.py"
        assert doc.read_text() == render_cli_docs(), (
            "docs/cli.md is stale; regenerate with "
            "`PYTHONPATH=src python tools/gen_cli_docs.py`"
        )
