"""Tests for the async serving daemon (repro.serving.daemon/protocol/client).

Covers the full concurrency surface: startup/shutdown, deadline shedding,
admission-control backpressure, graceful drain (in-process and via SIGTERM
to the real CLI subprocess), mixed concurrent clients, the stats endpoint,
and — property-style — bit-identical agreement between answers served over
the wire and direct in-process ``FleetService`` calls.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ServingError
from repro.serving import (
    DaemonClient,
    DaemonConfig,
    DaemonRequestError,
    FleetService,
    MessageStream,
    ServingDaemon,
)
from repro.serving.protocol import (
    E_BAD_REQUEST,
    E_DEADLINE,
    E_OVERLOADED,
    encode_message,
)


@pytest.fixture(scope="module")
def fleet_models(trained_trainer):
    """Two devices served by one shared read-only model."""
    return {"t4": trained_trainer, "k80": trained_trainer}


@pytest.fixture()
def daemon(fleet_models):
    """A running daemon on an ephemeral port, stopped at teardown."""
    daemon = ServingDaemon(fleet_models, DaemonConfig(port=0, max_wait_ms=5.0))
    daemon.start()
    yield daemon
    daemon.stop()


def _connect(daemon: ServingDaemon) -> DaemonClient:
    host, port = daemon.address
    return DaemonClient(host, port)


def _raw_stream(daemon: ServingDaemon) -> MessageStream:
    return MessageStream(socket.create_connection(daemon.address, timeout=30))


class TestLifecycle:
    def test_startup_shutdown(self, fleet_models):
        daemon = ServingDaemon(fleet_models, DaemonConfig(port=0))
        assert not daemon.running
        daemon.start()
        try:
            assert daemon.running
            host, port = daemon.address
            assert host == "127.0.0.1" and port > 0
            assert daemon.devices == ["k80", "t4"]
        finally:
            daemon.stop()
        assert not daemon.running
        daemon.stop()  # idempotent

    def test_start_twice_rejected(self, daemon):
        with pytest.raises(ServingError):
            daemon.start()

    def test_context_manager(self, fleet_models):
        with ServingDaemon(fleet_models, DaemonConfig(port=0)) as daemon:
            with _connect(daemon) as client:
                assert client.health()["status"] == "serving"
        assert not daemon.running

    def test_health_reports_devices_and_uptime(self, daemon):
        with _connect(daemon) as client:
            health = client.health()
        assert health["devices"] == ["k80", "t4"]
        assert health["uptime_s"] >= 0.0
        assert health["pending"] == 0
        assert health["protocol"] == 1

    def test_single_model_needs_devices(self, trained_trainer):
        with pytest.raises(ServingError):
            ServingDaemon(trained_trainer)
        daemon = ServingDaemon(trained_trainer, devices=["t4"])
        assert daemon.devices == ["t4"]


class TestBitIdenticalToDirectPredict:
    """Wire answers must equal in-process FleetService answers exactly.

    The daemon runs the same partition -> batch -> compose code as a direct
    call, and JSON round-trips doubles exactly, so the comparison is ``==``,
    not approx.
    """

    @pytest.mark.parametrize("network,batch_size", [("bert_tiny", 1), ("bert_tiny", 4)])
    def test_query_matches_direct(self, daemon, fleet_models, network, batch_size):
        direct = FleetService(fleet_models).predict_model(
            network, device="t4", batch_size=batch_size, seed=0
        )
        with _connect(daemon) as client:
            served = client.query(network, device="t4", batch_size=batch_size, seed=0)
        assert served["latency_s"] == direct.predicted_latency_s
        assert served["serial_latency_s"] == direct.serial_latency_s
        assert served["per_kernel_latency_s"] == dict(direct.per_kernel_latency_s)
        assert served["num_nodes"] == direct.num_nodes
        assert served["num_unique_kernels"] == direct.num_unique_kernels

    def test_fanout_matches_direct_fleet(self, daemon, fleet_models):
        direct = FleetService(fleet_models).predict_model_fleet("bert_tiny", seed=0)
        with _connect(daemon) as client:
            served = client.predict_model("bert_tiny", seed=0)
        assert [r["device"] for r in served] == [p.device for p in direct]
        assert [r["latency_s"] for r in served] == [p.predicted_latency_s for p in direct]

    def test_compose_serial_matches_direct(self, daemon, fleet_models):
        direct = FleetService(fleet_models).predict_model(
            "bert_tiny", device="k80", batch_size=1, seed=0, compose="serial"
        )
        with _connect(daemon) as client:
            served = client.query("bert_tiny", device="k80", compose="serial", seed=0)
        assert served["latency_s"] == direct.predicted_latency_s


class TestDeadlines:
    def test_expired_deadline_is_shed(self, fleet_models):
        # A generous batching window, so the deadline (not the window)
        # decides when the request is looked at — by which point it expired.
        config = DaemonConfig(port=0, max_wait_ms=500.0, max_batch_size=64)
        with ServingDaemon(fleet_models, config) as daemon:
            with _connect(daemon) as client:
                with pytest.raises(DaemonRequestError) as excinfo:
                    client.query("bert_tiny", device="t4", deadline_ms=0.0)
                assert excinfo.value.code == E_DEADLINE
                stats = client.stats()
        assert stats["daemon"]["shed_deadline"] == 1

    def test_deadline_closes_batch_window_early(self, fleet_models):
        # Without a deadline the answer waits out the 800ms window; with a
        # tight-but-achievable deadline it must arrive well before that.
        config = DaemonConfig(port=0, max_wait_ms=800.0, max_batch_size=64)
        with ServingDaemon(fleet_models, config) as daemon:
            with _connect(daemon) as client:
                client.query("bert_tiny", device="t4")  # warm caches/partition
                start = time.monotonic()
                result = client.query("bert_tiny", device="t4", deadline_ms=150.0)
                elapsed = time.monotonic() - start
        assert result["ok"]
        assert elapsed < 0.75  # served at the deadline, not the window

    def test_patient_request_waits_out_the_window(self, fleet_models):
        config = DaemonConfig(port=0, max_wait_ms=300.0, max_batch_size=64)
        with ServingDaemon(fleet_models, config) as daemon:
            with _connect(daemon) as client:
                start = time.monotonic()
                result = client.query("bert_tiny", device="t4")
                elapsed = time.monotonic() - start
        assert result["ok"]
        assert elapsed >= 0.28  # the window is the floor when nothing presses


class TestBackpressure:
    def test_overloaded_rejection_with_retry_hint(self, fleet_models):
        # queue_limit=1: the first pipelined request occupies the queue for
        # the whole 400ms window, so the next two are rejected immediately.
        config = DaemonConfig(
            port=0, max_wait_ms=400.0, max_batch_size=64, queue_limit=1, retry_after_ms=25.0
        )
        with ServingDaemon(fleet_models, config) as daemon:
            stream = _raw_stream(daemon)
            try:
                for request_id in (1, 2, 3):
                    stream.send(
                        {"op": "query", "id": request_id, "network": "bert_tiny", "device": "t4"}
                    )
                responses = {}
                for _ in range(3):
                    response = stream.recv()
                    responses[response["id"]] = response
            finally:
                stream.close()
        assert responses[1]["ok"]  # admitted, served at window close
        for rejected_id in (2, 3):
            rejected = responses[rejected_id]
            assert not rejected["ok"]
            assert rejected["error"]["code"] == E_OVERLOADED
            assert rejected["retry_after_ms"] == 25.0

    def test_no_drops_below_admission_limit(self, fleet_models):
        config = DaemonConfig(port=0, max_wait_ms=5.0, queue_limit=256)
        with ServingDaemon(fleet_models, config) as daemon:
            stream = _raw_stream(daemon)
            try:
                total = 40
                for request_id in range(total):
                    stream.send(
                        {
                            "op": "query",
                            "id": request_id,
                            "network": "bert_tiny",
                            "device": "t4",
                        }
                    )
                answered = set()
                for _ in range(total):
                    response = stream.recv()
                    assert response["ok"], response
                    answered.add(response["id"])
            finally:
                stream.close()
        assert answered == set(range(total))


class TestGracefulDrain:
    def test_stop_with_drain_answers_queued_work(self, fleet_models):
        # A long window queues the request; stop(drain=True) must answer it
        # instead of dropping it, then refuse new work.
        config = DaemonConfig(port=0, max_wait_ms=5000.0, max_batch_size=64)
        daemon = ServingDaemon(fleet_models, config).start()
        stream = _raw_stream(daemon)
        try:
            stream.send({"op": "query", "id": 7, "network": "bert_tiny", "device": "t4"})
            deadline = time.monotonic() + 5.0
            while daemon.pending == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            assert daemon.pending == 1
            daemon.stop(drain=True)
            response = stream.recv()
        finally:
            stream.close()
        assert response["ok"] and response["id"] == 7
        assert response["latency_s"] > 0.0
        assert not daemon.running

    def test_stop_without_drain_fails_queued_work(self, fleet_models):
        config = DaemonConfig(port=0, max_wait_ms=5000.0, max_batch_size=64)
        daemon = ServingDaemon(fleet_models, config).start()
        stream = _raw_stream(daemon)
        try:
            stream.send({"op": "query", "id": 9, "network": "bert_tiny", "device": "t4"})
            deadline = time.monotonic() + 5.0
            while daemon.pending == 0 and time.monotonic() < deadline:
                time.sleep(0.005)
            daemon.stop(drain=False)
            response = stream.recv()
        finally:
            stream.close()
        assert not response["ok"]
        assert response["error"]["code"] == "shutting_down"

    def test_serve_forever_returns_after_request_shutdown(self, fleet_models):
        daemon = ServingDaemon(fleet_models, DaemonConfig(port=0)).start()
        server = threading.Thread(target=daemon.serve_forever)
        server.start()
        daemon.request_shutdown()
        server.join(timeout=10)
        assert not server.is_alive()
        assert not daemon.running


class TestConcurrentClients:
    def test_mixed_query_and_fanout_clients(self, daemon, fleet_models):
        fleet = FleetService(fleet_models)
        expected_query = fleet.predict_model("bert_tiny", device="t4", seed=0)
        expected_fanout = fleet.predict_model_fleet("bert_tiny", seed=0)
        errors, results = [], []
        lock = threading.Lock()

        def worker(index: int) -> None:
            try:
                with _connect(daemon) as client:
                    for _ in range(3):
                        if index % 2 == 0:
                            served = client.query("bert_tiny", device="t4", seed=0)
                            assert served["latency_s"] == expected_query.predicted_latency_s
                        else:
                            served = client.predict_model("bert_tiny", seed=0)
                            assert [r["latency_s"] for r in served] == [
                                p.predicted_latency_s for p in expected_fanout
                            ]
                        with lock:
                            results.append(index)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == 24

    def test_pipelined_requests_on_one_connection(self, daemon):
        stream = _raw_stream(daemon)
        try:
            for request_id in range(10):
                stream.send(
                    {
                        "op": "query",
                        "id": request_id,
                        "network": "bert_tiny",
                        "device": ["t4", "k80"][request_id % 2],
                    }
                )
            seen = set()
            for _ in range(10):
                response = stream.recv()
                assert response["ok"]
                seen.add(response["id"])
        finally:
            stream.close()
        assert seen == set(range(10))


class TestStatsEndpoint:
    def test_counters_reconcile(self, fleet_models):
        with ServingDaemon(fleet_models, DaemonConfig(port=0, max_wait_ms=5.0)) as daemon:
            with _connect(daemon) as client:
                client.health()
                for _ in range(3):
                    client.query("bert_tiny", device="t4")
                client.predict_model("bert_tiny")
                stats = client.stats()
        counters = stats["daemon"]
        assert counters["queries"] == 3
        assert counters["model_queries"] == 1
        assert counters["health_checks"] == 1
        assert counters["stats_requests"] == 1
        assert counters["requests"] == 6
        assert counters["connections"] == 1
        assert counters["batches"] >= 1
        assert counters["pending"] == 0
        # Per-shard serving stats come from the underlying FleetService.
        assert set(stats["shards"]) == {"t4", "k80"}
        assert stats["shards"]["t4"]["model_queries"] >= 4  # 3 queries + fanout leg


class TestProtocolErrors:
    def test_unknown_op_is_bad_request(self, daemon):
        stream = _raw_stream(daemon)
        try:
            stream.send({"op": "divine", "id": 1})
            response = stream.recv()
        finally:
            stream.close()
        assert not response["ok"]
        assert response["error"]["code"] == E_BAD_REQUEST
        assert response["id"] == 1

    def test_malformed_json_is_bad_request(self, daemon):
        sock = socket.create_connection(daemon.address, timeout=30)
        try:
            sock.sendall(b"this is not json\n")
            data = sock.recv(65536)
        finally:
            sock.close()
        response = json.loads(data.decode().splitlines()[0])
        assert not response["ok"]
        assert response["error"]["code"] == E_BAD_REQUEST

    def test_unknown_network_and_device(self, daemon):
        with _connect(daemon) as client:
            with pytest.raises(DaemonRequestError) as excinfo:
                client.query("skynet", device="t4")
            assert excinfo.value.code == E_BAD_REQUEST
            with pytest.raises(DaemonRequestError) as excinfo:
                client.query("bert_tiny", device="a100")  # real device, not served
            assert excinfo.value.code == E_BAD_REQUEST

    def test_non_object_message_rejected(self, daemon):
        sock = socket.create_connection(daemon.address, timeout=30)
        try:
            sock.sendall(encode_message({"op": "health"})[:-1] + b"\n")  # sanity: ok
            sock.sendall(b"[1, 2, 3]\n")
            stream = MessageStream(sock)
            first = stream.recv()
            second = stream.recv()
        finally:
            sock.close()
        assert first["ok"]
        assert second["error"]["code"] == E_BAD_REQUEST


class TestDaemonCLI:
    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        """Full lifecycle through the real CLI: train, serve, query, SIGTERM."""
        from repro.cli import main

        registry = str(tmp_path / "registry")
        assert main(["train", "t4", "--scale", "tiny", "--registry", registry]) == 0

        env = dict(os.environ)
        env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "daemon",
                "--devices",
                "t4",
                "--port",
                "0",
                "--registry",
                registry,
                "--scale",
                "tiny",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            port = None
            for _ in range(50):
                line = proc.stdout.readline()
                match = re.search(r"listening on [\d.]+:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port, "daemon never printed its port"

            with DaemonClient("127.0.0.1", port) as client:
                result = client.query("bert_tiny", device="t4")
                assert result["latency_s"] > 0.0

            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, output
        assert "drained and stopped" in output
