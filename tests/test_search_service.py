"""Tests for the schedule-search serving tier (repro.serving.search*).

Covers the full surface of the SearchService stack: the ScoreFn contract of
the refactored evolutionary search, bit-identical seed determinism (across
runs, across warm/cold prediction caches, and for Generator seeds), the
one-batched-predict-per-round batching guarantee asserted via the prediction
service's own counters, search-cache persistence and invalidation (model
swaps, registry re-saves and deletes evict exactly the affected entries),
and the daemon's ``tune`` op + ``cdmpp tune`` CLI round trip.
"""

import json
import threading

import numpy as np
import pytest

from repro.devices.spec import get_device
from repro.errors import SearchError, ServingError
from repro.search.ansor import SearchResult, evolutionary_search
from repro.serving import (
    DaemonConfig,
    DaemonRequestError,
    FleetService,
    ModelRegistry,
    PredictionService,
    SearchCache,
    SearchService,
    ServingDaemon,
)
from repro.ops import dense
from repro.tir.schedule import schedule_to_dict

#: A deliberately tiny search budget so every test stays fast.
BUDGET = dict(num_rounds=3, population=4, measurements_per_round=2)


def flops_score(programs):
    """A cheap, deterministic, stateless stand-in for a cost model."""
    return np.array([float(program.stats.total_flops) for program in programs])


@pytest.fixture(scope="module")
def small_task():
    return dense(4, 16, 16, model="search-test")


def run_search(task, seed=0, score_fn=flops_score, **overrides):
    params = dict(BUDGET, **overrides)
    return evolutionary_search(task, "t4", score_fn, seed=seed, **params)


# ----------------------------------------------------------------------
# ScoreFn contract
# ----------------------------------------------------------------------
class TestScoreFnContract:
    def test_nan_scores_rejected(self, small_task):
        def bad(programs):
            scores = np.ones(len(programs))
            scores[0] = np.nan
            return scores

        with pytest.raises(SearchError, match="non-finite"):
            run_search(small_task, score_fn=bad)

    def test_inf_scores_rejected(self, small_task):
        with pytest.raises(SearchError, match="non-finite"):
            run_search(small_task, score_fn=lambda programs: [float("inf")] * len(programs))

    def test_wrong_shape_rejected(self, small_task):
        with pytest.raises(SearchError, match="1-D"):
            run_search(small_task, score_fn=lambda programs: np.ones((len(programs), 1)))

    def test_wrong_count_rejected(self, small_task):
        with pytest.raises(SearchError, match="wrong number of scores"):
            run_search(small_task, score_fn=lambda programs: np.ones(len(programs) + 1))

    def test_non_numeric_rejected(self, small_task):
        with pytest.raises(SearchError, match="non-numeric"):
            run_search(small_task, score_fn=lambda programs: ["fast"] * len(programs))

    def test_non_positive_budget_rejected(self, small_task):
        with pytest.raises(SearchError):
            run_search(small_task, num_rounds=0)
        with pytest.raises(SearchError):
            run_search(small_task, population=0)


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
class TestSeedDeterminism:
    def test_same_seed_bit_identical(self, small_task):
        first = run_search(small_task, seed=7)
        second = run_search(small_task, seed=7)
        assert first == second  # dataclass equality covers schedule + history
        assert first.best_latency_s == second.best_latency_s
        assert first.best_latency_per_round == second.best_latency_per_round

    def test_different_seeds_explore_differently(self, small_task):
        histories = {tuple(run_search(small_task, seed=s).best_latency_per_round) for s in range(5)}
        assert len(histories) > 1

    def test_generator_seeds_are_reproducible(self, small_task):
        first = run_search(small_task, seed=np.random.default_rng(3))
        second = run_search(small_task, seed=np.random.default_rng(3))
        assert first == second

    def test_generator_seed_not_aliased(self, small_task):
        """The search derives a child stream; the caller's Generator stays usable
        and is advanced identically regardless of how much the search draws."""
        rng_used = np.random.default_rng(11)
        run_search(small_task, seed=rng_used)
        long_rng = np.random.default_rng(11)
        run_search(small_task, seed=long_rng, num_rounds=4, population=6)
        # Both searches consumed the same (constant) number of parent draws,
        # so the caller streams continue in lockstep.
        assert rng_used.integers(0, 2**31) == long_rng.integers(0, 2**31)


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
class TestSearchResultSerialization:
    def test_roundtrip_is_bit_identical(self, small_task):
        result = run_search(small_task, seed=5)
        replayed = SearchResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert replayed == result
        assert schedule_to_dict(replayed.best_schedule) == schedule_to_dict(result.best_schedule)

    def test_none_schedule_roundtrip(self):
        result = SearchResult(task_key="k", best_latency_s=1.0, best_schedule=None)
        assert SearchResult.from_dict(result.to_dict()) == result


# ----------------------------------------------------------------------
# SearchService: batching + caching through a real prediction tier
# ----------------------------------------------------------------------
class TestSearchServiceBatching:
    def test_one_batched_predict_per_round(self, trained_trainer, small_task):
        service = PredictionService(trained_trainer)
        search = SearchService(service, cache=SearchCache())
        before = service.stats.batches
        result = search.tune_task(small_task, "t4", **BUDGET, seed=0)
        assert result.scoring_batches == BUDGET["num_rounds"]
        assert service.stats.batches - before == BUDGET["num_rounds"]

    def test_warm_prediction_cache_is_bit_identical_with_zero_batches(
        self, trained_trainer, small_task
    ):
        service = PredictionService(trained_trainer)
        cold = SearchService(service, cache=SearchCache()).tune_task(
            small_task, "t4", **BUDGET, seed=0
        )
        before = service.stats.batches
        warm = SearchService(service, cache=SearchCache()).tune_task(
            small_task, "t4", **BUDGET, seed=0
        )
        assert warm == cold
        assert service.stats.batches == before  # every score came from cache

    def test_cached_retune_issues_no_queries(self, trained_trainer, small_task):
        service = PredictionService(trained_trainer)
        search = SearchService(service, cache=SearchCache())
        first = search.tune_task(small_task, "t4", **BUDGET, seed=0)
        queries_before = service.stats.queries
        second = search.tune_task(small_task, "t4", **BUDGET, seed=0)
        assert second == first
        assert service.stats.queries == queries_before
        assert search.stats.cache_hits == 1

    def test_no_cache_forces_fresh_search(self, trained_trainer, small_task):
        service = PredictionService(trained_trainer)
        search = SearchService(service, cache=SearchCache())
        first = search.tune_task(small_task, "t4", **BUDGET, seed=0)
        queries_before = service.stats.queries
        second = search.tune_task(small_task, "t4", **BUDGET, seed=0, use_cache=False)
        assert search.stats.searches_run == 2 and search.stats.cache_hits == 0
        # The re-search really re-queried the tier (the warm prediction cache
        # answers them without new predictor batches) and re-derived the same
        # result, which replaces the cached entry.
        assert service.stats.queries > queries_before
        assert second == first and len(search.cache) == 1

    def test_different_params_are_distinct_entries(self, trained_trainer, small_task):
        service = PredictionService(trained_trainer)
        search = SearchService(service, cache=SearchCache())
        search.tune_task(small_task, "t4", **BUDGET, seed=0)
        search.tune_task(small_task, "t4", **BUDGET, seed=1)
        assert len(search.cache) == 2
        assert search.stats.searches_run == 2

    def test_rejects_non_service_tier(self):
        with pytest.raises(ServingError, match="FleetService or PredictionService"):
            SearchService(object())


class TestTuneModel:
    def test_partitions_and_tunes_every_unique_task(self, trained_trainer):
        fleet = FleetService({"t4": trained_trainer})
        search = SearchService(fleet, cache=SearchCache())
        (tuning,) = search.tune_model("bert_tiny", devices=["t4"], **BUDGET, seed=0)
        assert tuning.device == "t4"
        assert tuning.model == "bert_tiny"
        assert len(tuning.results) > 1
        assert sorted(tuning.fresh_tasks) == sorted(tuning.results)
        assert not tuning.cached_tasks and not tuning.fully_cached
        assert tuning.tuned_latency_s == pytest.approx(
            sum(result.best_latency_s for result in tuning.results.values())
        )

    def test_retune_is_fully_cached_and_bit_identical(self, trained_trainer):
        fleet = FleetService({"t4": trained_trainer})
        search = SearchService(fleet, cache=SearchCache())
        (first,) = search.tune_model("bert_tiny", devices=["t4"], **BUDGET, seed=0)
        kernel = fleet.service_for_kernels()
        queries_before = kernel.stats.queries
        (second,) = search.tune_model("bert_tiny", devices=["t4"], **BUDGET, seed=0)
        assert second.fully_cached
        assert kernel.stats.queries == queries_before
        assert second.results == first.results

    def test_tune_model_and_tune_task_do_not_alias(self, trained_trainer):
        """tune_model searches task under (seed, key); a base-seed tune_task of
        the same task must not be served that entry (or vice versa)."""
        fleet = FleetService({"t4": trained_trainer})
        search = SearchService(fleet, cache=SearchCache())
        (tuning,) = search.tune_model("bert_tiny", devices=["t4"], **BUDGET, seed=0)
        entries_before = len(search.cache)
        key, task = None, None
        from repro.graph.partition import extract_unique_tasks, partition_into_programs

        dfg = partition_into_programs("bert_tiny", target_kind="gpu", batch_size=1, seed=0)
        key, task = next(iter(extract_unique_tasks(dfg).items()))
        direct = search.tune_task(task, "t4", **BUDGET, seed=0)
        assert len(search.cache) == entries_before + 1  # a distinct entry, not a hit
        assert search.stats.searches_run == len(tuning.results) + 1
        # The per-task stream of tune_model differs from the base-seed stream.
        assert direct != tuning.results[key]

    def test_devices_default_to_fleet(self, trained_trainer):
        fleet = FleetService({"t4": trained_trainer, "k80": trained_trainer})
        search = SearchService(fleet, cache=SearchCache())
        tunings = search.tune_model("bert_tiny", **BUDGET, seed=0)
        assert sorted(tuning.device for tuning in tunings) == ["k80", "t4"]

    def test_empty_devices_rejected(self, trained_trainer):
        search = SearchService(FleetService({"t4": trained_trainer}), cache=SearchCache())
        with pytest.raises(SearchError, match="at least one device"):
            search.tune_model("bert_tiny", devices=[], **BUDGET)


# ----------------------------------------------------------------------
# SearchCache: persistence + invalidation
# ----------------------------------------------------------------------
class TestSearchCache:
    def _result(self, key="wl-0"):
        return SearchResult(task_key=key, best_latency_s=1e-4, best_schedule=None)

    def test_put_get_and_stats(self):
        cache = SearchCache()
        spec = get_device("t4")
        params = {"seed": 0}
        assert cache.get("wl-0", spec, ("sig",), params) is None
        cache.put("wl-0", spec, ("sig",), params, self._result())
        assert cache.get("wl-0", spec, ("sig",), params) == self._result()
        stats = cache.describe_stats()
        assert stats["hits"] == 1 and stats["misses"] == 1 and stats["puts"] == 1

    def test_signature_and_params_distinguish_entries(self):
        cache = SearchCache()
        spec = get_device("t4")
        cache.put("wl-0", spec, ("sig", 1), {"seed": 0}, self._result())
        assert cache.get("wl-0", spec, ("sig", 2), {"seed": 0}) is None
        assert cache.get("wl-0", spec, ("sig", 1), {"seed": 1}) is None
        assert cache.get("wl-0", spec, ("sig", 1), {"seed": (0, "dense")}) is None

    def test_disk_persistence_across_instances(self, tmp_path):
        spec = get_device("t4")
        params = {"seed": 3}
        SearchCache(tmp_path).put("wl-0", spec, ("sig",), params, self._result())
        reloaded = SearchCache(tmp_path)
        assert reloaded.get("wl-0", spec, ("sig",), params) == self._result()

    def test_invalidate_device_evicts_only_that_device(self, tmp_path):
        cache = SearchCache(tmp_path)
        params = {"seed": 0}
        cache.put("wl-0", get_device("t4"), ("sig",), params, self._result())
        cache.put("wl-0", get_device("k80"), ("sig",), params, self._result())
        assert cache.invalidate_device("t4") == 1
        assert cache.get("wl-0", get_device("t4"), ("sig",), params) is None
        assert cache.get("wl-0", get_device("k80"), ("sig",), params) is not None
        # The eviction reaches the disk copy too: a fresh instance agrees.
        assert SearchCache(tmp_path).get("wl-0", get_device("t4"), ("sig",), params) is None

    def test_invalidate_model_evicts_only_that_model(self):
        cache = SearchCache()
        spec = get_device("t4")
        cache.put("wl-0", spec, ("sig",), {"seed": 0}, self._result(), model_name="a")
        cache.put("wl-1", spec, ("sig",), {"seed": 0}, self._result("wl-1"), model_name="b")
        assert cache.invalidate_model("a") == 1
        assert cache.get("wl-0", spec, ("sig",), {"seed": 0}) is None
        assert cache.get("wl-1", spec, ("sig",), {"seed": 0}) is not None

    def test_concurrent_eviction_is_atomic(self):
        """Mirror of the DeviceShardedCache hammer: unique-key writers racing a
        device invalidator must never error and the books must balance."""
        cache = SearchCache()
        spec = get_device("t4")
        num_threads, per_thread = 8, 400
        errors = []
        barrier = threading.Barrier(num_threads + 1)

        def writer(worker: int) -> None:
            try:
                barrier.wait()
                for i in range(per_thread):
                    key = f"wl-{worker}-{i}"
                    cache.put(key, spec, ("sig",), {"seed": 0}, self._result(key))
                    cache.get(key, spec, ("sig",), {"seed": 0})
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        def invalidator() -> None:
            try:
                barrier.wait()
                for _ in range(200):
                    cache.invalidate_device("t4")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(num_threads)]
        threads.append(threading.Thread(target=invalidator))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        stats = cache.describe_stats()
        assert stats["hits"] + stats["misses"] == num_threads * per_thread
        assert stats["puts"] == num_threads * per_thread


class TestInvalidation:
    def test_swap_evicts_only_swapped_device(self, trained_trainer, small_task):
        fleet = FleetService({"t4": trained_trainer, "k80": trained_trainer})
        search = SearchService(fleet, cache=SearchCache())
        search.tune_task(small_task, "t4", **BUDGET, seed=0)
        search.tune_task(small_task, "k80", **BUDGET, seed=0)
        fleet.register_device("k80", trained_trainer.clone())
        assert len(search.cache) == 1  # only the t4 entry survived
        kernel = fleet.service_for_kernels()
        queries_before = kernel.stats.queries
        search.tune_task(small_task, "t4", **BUDGET, seed=0)  # still a hit
        assert kernel.stats.queries == queries_before
        search.tune_task(small_task, "k80", **BUDGET, seed=0)  # forced fresh
        assert kernel.stats.queries > queries_before
        assert search.stats.searches_run == 3

    def test_registry_resave_evicts_model_entries(self, trained_trainer, small_task, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("t4-tiny", trained_trainer, device="t4", scale="tiny", seed=0)
        fleet = FleetService({"t4": registry.load("t4-tiny")})
        search = SearchService(fleet, registry=registry, model_names={"t4": "t4-tiny"})
        first = search.tune_task(small_task, "t4", **BUDGET, seed=0)
        assert len(search.cache) == 1
        # Re-saving the checkpoint (a retrain under the same name) must evict
        # its tunings; serving the stale cached result would be a bug.
        registry.save("t4-tiny", trained_trainer, device="t4", scale="tiny", seed=0)
        assert len(search.cache) == 0
        again = search.tune_task(small_task, "t4", **BUDGET, seed=0)
        assert search.stats.searches_run == 2
        assert again == first  # same weights, same seed -> same search

    def test_registry_delete_evicts_model_entries(self, trained_trainer, small_task, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("t4-tiny", trained_trainer, device="t4", scale="tiny", seed=0)
        search = SearchService(
            FleetService({"t4": registry.load("t4-tiny")}),
            registry=registry,
            model_names={"t4": "t4-tiny"},
        )
        search.tune_task(small_task, "t4", **BUDGET, seed=0)
        registry.delete("t4-tiny")
        assert len(search.cache) == 0

    def test_cache_persists_across_service_instances(self, trained_trainer, small_task, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.save("t4-tiny", trained_trainer, device="t4", scale="tiny", seed=0)
        first = SearchService(
            FleetService({"t4": registry.load("t4-tiny")}), registry=registry
        ).tune_task(small_task, "t4", **BUDGET, seed=0)
        # A brand-new registry + service on the same directory serves the
        # persisted tuning without searching.
        fresh_registry = ModelRegistry(tmp_path)
        fresh = SearchService(
            FleetService({"t4": fresh_registry.load("t4-tiny")}), registry=fresh_registry
        )
        result = fresh.tune_task(small_task, "t4", **BUDGET, seed=0)
        assert result == first
        assert fresh.stats.cache_hits == 1 and fresh.stats.searches_run == 0


# ----------------------------------------------------------------------
# Daemon `tune` op
# ----------------------------------------------------------------------
class TestDaemonTune:
    @pytest.fixture()
    def daemon(self, trained_trainer):
        daemon = ServingDaemon(
            {"t4": trained_trainer, "k80": trained_trainer},
            DaemonConfig(port=0, max_wait_ms=5.0),
        )
        daemon.start()
        yield daemon
        daemon.stop()

    def _connect(self, daemon):
        from repro.serving import DaemonClient

        host, port = daemon.address
        return DaemonClient(host, port)

    def test_tune_roundtrip_and_cached_retune(self, daemon):
        with self._connect(daemon) as client:
            (first,) = client.tune(
                "bert_tiny", devices=["t4"], rounds=2, population=4, measurements_per_round=2, seed=0
            )
            assert first["device"] == "t4"
            assert first["fresh_tasks"] and not first["cached_tasks"]
            (second,) = client.tune(
                "bert_tiny", devices=["t4"], rounds=2, population=4, measurements_per_round=2, seed=0
            )
            assert not second["fresh_tasks"]
            assert sorted(second["cached_tasks"]) == sorted(first["fresh_tasks"])
            assert second["results"] == first["results"]  # bit-identical off the wire
            stats = client.stats()
            assert stats["daemon"]["tune_queries"] == 2
            assert stats["shards"]["t4"]["search"]["cache_hits"] > 0

    def test_tune_fans_out_to_all_devices_by_default(self, daemon):
        with self._connect(daemon) as client:
            results = client.tune("bert_tiny", rounds=2, population=4, measurements_per_round=2, seed=0)
            assert sorted(result["device"] for result in results) == ["k80", "t4"]

    def test_bad_budget_rejected(self, daemon):
        with self._connect(daemon) as client:
            with pytest.raises(DaemonRequestError) as excinfo:
                client.tune("bert_tiny", devices=["t4"], rounds=0)
            assert excinfo.value.code == "bad_request"

    def test_unknown_network_rejected(self, daemon):
        with self._connect(daemon) as client:
            with pytest.raises(DaemonRequestError) as excinfo:
                client.tune("no-such-net", devices=["t4"], rounds=2)
            assert excinfo.value.code == "bad_request"


# ----------------------------------------------------------------------
# `cdmpp tune` CLI
# ----------------------------------------------------------------------
class TestCLITune:
    def test_tune_then_cached_retune(self, trained_trainer, tmp_path, capsys):
        from repro.cli import main

        ModelRegistry(tmp_path).save(
            "t4-tiny", trained_trainer, device="t4", scale="tiny", seed=0
        )
        argv = [
            "tune",
            "bert_tiny",
            "--devices",
            "t4",
            "--registry",
            str(tmp_path),
            "--rounds",
            "2",
            "--population",
            "4",
            "--measurements-per-round",
            "2",
        ]
        assert main(argv) == 0
        fresh_out = capsys.readouterr().out
        assert "0 cached" in fresh_out and "fresh" in fresh_out

        assert main(argv) == 0
        cached_out = capsys.readouterr().out
        assert "0 fresh" in cached_out
        assert "0 candidates scored in 0 batched predictor calls" in cached_out

        def latencies(text):
            return [
                line.split("tuned latency")[1]
                for line in text.splitlines()
                if "tuned latency" in line
            ]

        assert latencies(cached_out) == latencies(fresh_out)

    def test_missing_checkpoint_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["tune", "bert_tiny", "--devices", "t4", "--registry", str(tmp_path)]) == 2
        assert "train" in capsys.readouterr().err
